#include "core/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/nf_biquad.hpp"
#include "faults/fault_simulator.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

class SamplingTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cut_ = new circuits::CircuitUnderTest(circuits::make_paper_cut());
    sim_ = new faults::FaultSimulator(*cut_);
    golden_ = new mna::AcResponse(sim_->golden(sim_->dictionary_frequencies()));
  }
  static void TearDownTestSuite() {
    delete golden_;
    delete sim_;
    delete cut_;
    golden_ = nullptr;
    sim_ = nullptr;
    cut_ = nullptr;
  }
  static circuits::CircuitUnderTest* cut_;
  static faults::FaultSimulator* sim_;
  static mna::AcResponse* golden_;
};

circuits::CircuitUnderTest* SamplingTest::cut_ = nullptr;
faults::FaultSimulator* SamplingTest::sim_ = nullptr;
mna::AcResponse* SamplingTest::golden_ = nullptr;

TEST_F(SamplingTest, GoldenMapsToOriginWhenRelative) {
  const SpectralSampler sampler(*golden_, SamplingPolicy{});
  const Point p = sampler.sample(*golden_, {100.0, 2000.0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_NEAR(p[0], 0.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  EXPECT_EQ(sampler.golden_point({100.0, 2000.0}), Point({0.0, 0.0}));
}

TEST_F(SamplingTest, AbsolutePolicyKeepsRawMagnitudes) {
  SamplingPolicy policy;
  policy.golden_relative = false;
  const SpectralSampler sampler(*golden_, policy);
  const Point p = sampler.sample(*golden_, {100.0});
  EXPECT_NEAR(p[0], 1.0, 1e-3);  // unity passband
  EXPECT_NEAR(sampler.golden_point({100.0})[0], p[0], 1e-12);
}

TEST_F(SamplingTest, FaultMovesThePointAwayFromOrigin) {
  const SpectralSampler sampler(*golden_, SamplingPolicy{});
  const auto faulty = sim_->simulate(
      {faults::FaultSite::value_of("C1"), 0.30}, sim_->dictionary_frequencies());
  const Point p = sampler.sample(faulty, {500.0, 1500.0});
  EXPECT_GT(norm(p), 1e-4);
}

TEST_F(SamplingTest, DecibelScale) {
  SamplingPolicy policy;
  policy.scale = MagnitudeScale::kDecibel;
  policy.golden_relative = false;
  const SpectralSampler sampler(*golden_, policy);
  const Point p = sampler.sample(*golden_, {100.0});
  EXPECT_NEAR(p[0], 0.0, 0.01);  // 0 dB passband
}

TEST_F(SamplingTest, PhaseAugmentationDoublesDimension) {
  SamplingPolicy policy;
  policy.include_phase = true;
  EXPECT_EQ(policy.dimension(2), 4u);
  const SpectralSampler sampler(*golden_, policy);
  const Point p = sampler.sample(*golden_, {100.0, 2000.0});
  EXPECT_EQ(p.size(), 4u);
}

TEST_F(SamplingTest, SamplingOrderMatchesFrequencyOrder) {
  const SpectralSampler sampler(*golden_, SamplingPolicy{});
  const auto faulty = sim_->simulate(
      {faults::FaultSite::value_of("R2"), 0.40}, sim_->dictionary_frequencies());
  const Point p12 = sampler.sample(faulty, {300.0, 3000.0});
  const Point p21 = sampler.sample(faulty, {3000.0, 300.0});
  EXPECT_DOUBLE_EQ(p12[0], p21[1]);
  EXPECT_DOUBLE_EQ(p12[1], p21[0]);
}

TEST_F(SamplingTest, InterpolatedOffGridSamplingIsClose) {
  // Sample at an off-grid frequency; compare against direct simulation.
  const SpectralSampler sampler(*golden_, SamplingPolicy{});
  const faults::ParametricFault fault{faults::FaultSite::value_of("R3"), 0.2};
  const auto on_dict =
      sim_->simulate(fault, sim_->dictionary_frequencies());
  const double f_off = 1234.567;
  const auto exact = sim_->simulate(fault, {f_off});
  const Point p_interp = sampler.sample(on_dict, {f_off});
  const Point p_exact = sampler.sample(exact, {f_off});
  EXPECT_NEAR(p_interp[0], p_exact[0], 5e-4);
}

TEST_F(SamplingTest, EmptyGoldenRejected) {
  EXPECT_THROW(SpectralSampler(mna::AcResponse{}, SamplingPolicy{}),
               ConfigError);
}

TEST_F(SamplingTest, EmptyFrequencyListRejected) {
  const SpectralSampler sampler(*golden_, SamplingPolicy{});
  EXPECT_DEATH(sampler.sample(*golden_, {}), "frequency");
}

}  // namespace
}  // namespace ftdiag::core
