#include "faults/tolerance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/ladders.hpp"
#include "circuits/nf_biquad.hpp"

namespace ftdiag::faults {
namespace {

TEST(Tolerance, PerturbsEveryPassiveWithinBounds) {
  const auto cut = circuits::make_paper_cut();
  Rng rng(1);
  ToleranceSpec spec;
  spec.resistor_tolerance = 0.01;
  spec.capacitor_tolerance = 0.05;
  const auto perturbed = perturb_within_tolerance(cut.circuit, spec, rng);
  for (const auto& name : cut.circuit.passive_names()) {
    const double nominal = cut.circuit.value_of(name);
    const double actual = perturbed.value_of(name);
    const double tol =
        cut.circuit.component(name).kind == netlist::ComponentKind::kCapacitor
            ? 0.05
            : 0.01;
    EXPECT_LE(std::fabs(actual / nominal - 1.0), tol + 1e-12) << name;
    EXPECT_NE(actual, nominal) << name << " was not perturbed";
  }
}

TEST(Tolerance, FrozenComponentsKeepNominal) {
  const auto cut = circuits::make_paper_cut();
  Rng rng(2);
  const auto perturbed =
      perturb_within_tolerance(cut.circuit, {}, rng, {"R2", "C1"});
  EXPECT_DOUBLE_EQ(perturbed.value_of("R2"), cut.circuit.value_of("R2"));
  EXPECT_DOUBLE_EQ(perturbed.value_of("C1"), cut.circuit.value_of("C1"));
  EXPECT_NE(perturbed.value_of("R1"), cut.circuit.value_of("R1"));
}

TEST(Tolerance, ZeroToleranceIsIdentity) {
  const auto cut = circuits::make_paper_cut();
  Rng rng(3);
  ToleranceSpec spec;
  spec.resistor_tolerance = 0.0;
  spec.capacitor_tolerance = 0.0;
  const auto perturbed = perturb_within_tolerance(cut.circuit, spec, rng);
  for (const auto& name : cut.circuit.passive_names()) {
    EXPECT_DOUBLE_EQ(perturbed.value_of(name), cut.circuit.value_of(name));
  }
}

TEST(Tolerance, GaussianModeClampedToBounds) {
  const auto cut = circuits::make_paper_cut();
  ToleranceSpec spec;
  spec.uniform = false;
  spec.resistor_tolerance = 0.02;
  spec.capacitor_tolerance = 0.02;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto perturbed = perturb_within_tolerance(cut.circuit, spec, rng);
    for (const auto& name : cut.circuit.passive_names()) {
      EXPECT_LE(std::fabs(perturbed.value_of(name) /
                              cut.circuit.value_of(name) -
                          1.0),
                0.02 + 1e-12);
    }
  }
}

TEST(Tolerance, DeterministicPerSeed) {
  const auto cut = circuits::make_paper_cut();
  Rng rng_a(7), rng_b(7);
  const auto a = perturb_within_tolerance(cut.circuit, {}, rng_a);
  const auto b = perturb_within_tolerance(cut.circuit, {}, rng_b);
  for (const auto& name : cut.circuit.passive_names()) {
    EXPECT_DOUBLE_EQ(a.value_of(name), b.value_of(name));
  }
}

TEST(Tolerance, InductorToleranceFollowsResistorsByDefault) {
  // Historical behaviour, now explicit: with inductor_tolerance unset,
  // inductors are bounded by the resistor tolerance.
  const auto cut = circuits::make_lc_ladder();
  ToleranceSpec spec;
  spec.resistor_tolerance = 0.02;
  spec.capacitor_tolerance = 0.10;
  EXPECT_DOUBLE_EQ(spec.effective_inductor_tolerance(), 0.02);
  Rng rng(11);
  const auto perturbed = perturb_within_tolerance(cut.circuit, spec, rng);
  for (const auto& name : cut.circuit.passive_names()) {
    if (cut.circuit.component(name).kind !=
        netlist::ComponentKind::kInductor) {
      continue;
    }
    const double ratio =
        perturbed.value_of(name) / cut.circuit.value_of(name) - 1.0;
    EXPECT_LE(std::fabs(ratio), 0.02 + 1e-12) << name;
    EXPECT_NE(ratio, 0.0) << name << " was not perturbed";
  }
}

TEST(Tolerance, ExplicitInductorToleranceIsIndependent) {
  const auto cut = circuits::make_lc_ladder();
  ToleranceSpec spec;
  spec.resistor_tolerance = 0.01;
  spec.capacitor_tolerance = 0.05;
  spec.inductor_tolerance = 0.20;
  EXPECT_DOUBLE_EQ(spec.effective_inductor_tolerance(), 0.20);
  // With 40 draws, at least one inductor must land beyond the resistor
  // bound — proving it is not silently clamped to resistor_tolerance.
  bool beyond_resistor_bound = false;
  for (std::uint64_t seed = 0; seed < 40 && !beyond_resistor_bound; ++seed) {
    Rng rng(seed);
    const auto perturbed = perturb_within_tolerance(cut.circuit, spec, rng);
    for (const auto& name : cut.circuit.passive_names()) {
      const auto& comp = cut.circuit.component(name);
      const double ratio =
          perturbed.value_of(name) / cut.circuit.value_of(name) - 1.0;
      if (comp.kind == netlist::ComponentKind::kInductor) {
        EXPECT_LE(std::fabs(ratio), 0.20 + 1e-12) << name;
        if (std::fabs(ratio) > 0.01) beyond_resistor_bound = true;
      } else if (comp.kind == netlist::ComponentKind::kResistor) {
        EXPECT_LE(std::fabs(ratio), 0.01 + 1e-12) << name;
      }
    }
  }
  EXPECT_TRUE(beyond_resistor_bound);
}

TEST(Tolerance, ZeroInductorToleranceDisablesPerturbation) {
  const auto cut = circuits::make_lc_ladder();
  ToleranceSpec spec;
  spec.inductor_tolerance = 0.0;
  Rng rng(13);
  const auto perturbed = perturb_within_tolerance(cut.circuit, spec, rng);
  for (const auto& name : cut.circuit.passive_names()) {
    if (cut.circuit.component(name).kind ==
        netlist::ComponentKind::kInductor) {
      EXPECT_DOUBLE_EQ(perturbed.value_of(name), cut.circuit.value_of(name))
          << name;
    }
  }
}

TEST(Tolerance, NonPassivesUntouched) {
  const auto cut = circuits::make_paper_cut();
  Rng rng(9);
  const auto perturbed = perturb_within_tolerance(cut.circuit, {}, rng);
  EXPECT_DOUBLE_EQ(perturbed.component("vin").ac_magnitude,
                   cut.circuit.component("vin").ac_magnitude);
}

}  // namespace
}  // namespace ftdiag::faults
