#include "core/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag::core {
namespace {

TEST(Distance, Euclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(Norm, OfPoint) {
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm({}), 0.0);
}

TEST(Subtract, Pointwise) {
  const Point d = subtract({5, 7}, {2, 3});
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
}

TEST(ProjectPoint, OntoInterior) {
  const Segment s{{0, 0}, {10, 0}};
  const Projection p = project_point({5, 3}, s);
  EXPECT_DOUBLE_EQ(p.distance, 3.0);
  EXPECT_DOUBLE_EQ(p.t, 0.5);
  EXPECT_DOUBLE_EQ(p.closest[0], 5.0);
  EXPECT_DOUBLE_EQ(p.closest[1], 0.0);
}

TEST(ProjectPoint, ClampsToEndpoints) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(project_point({-5, 0}, s).t, 0.0);
  EXPECT_DOUBLE_EQ(project_point({15, 0}, s).t, 1.0);
  EXPECT_DOUBLE_EQ(project_point({15, 0}, s).distance, 5.0);
}

TEST(ProjectPoint, DegenerateSegment) {
  const Segment s{{1, 1}, {1, 1}};
  const Projection p = project_point({4, 5}, s);
  EXPECT_DOUBLE_EQ(p.distance, 5.0);
  EXPECT_DOUBLE_EQ(p.t, 0.0);
}

TEST(ProjectPoint, WorksInHigherDimensions) {
  const Segment s{{0, 0, 0}, {2, 0, 0}};
  const Projection p = project_point({1, 1, 1}, s);
  EXPECT_NEAR(p.distance, std::sqrt(2.0), 1e-12);
}

TEST(Intersect2d, ProperCrossing) {
  const Segment a{{0, 0}, {2, 2}};
  const Segment b{{0, 2}, {2, 0}};
  const auto hit = intersect_segments_2d(a, b);
  EXPECT_EQ(hit.relation, SegmentRelation::kProperCrossing);
  EXPECT_NEAR(hit.at[0], 1.0, 1e-12);
  EXPECT_NEAR(hit.at[1], 1.0, 1e-12);
}

TEST(Intersect2d, Disjoint) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{0, 1}, {1, 1}};
  EXPECT_EQ(intersect_segments_2d(a, b).relation, SegmentRelation::kDisjoint);
}

TEST(Intersect2d, DisjointButLinesWouldCross) {
  const Segment a{{0, 0}, {1, 1}};
  const Segment b{{3, 0}, {2, 0.5}};
  EXPECT_EQ(intersect_segments_2d(a, b).relation, SegmentRelation::kDisjoint);
}

TEST(Intersect2d, SharedEndpointIsTouching) {
  const Segment a{{0, 0}, {1, 1}};
  const Segment b{{1, 1}, {2, 0}};
  const auto hit = intersect_segments_2d(a, b);
  EXPECT_EQ(hit.relation, SegmentRelation::kTouching);
  EXPECT_NEAR(hit.at[0], 1.0, 1e-12);
}

TEST(Intersect2d, TJunctionIsTouching) {
  const Segment a{{0, 0}, {2, 0}};
  const Segment b{{1, 0}, {1, 5}};
  const auto hit = intersect_segments_2d(a, b);
  EXPECT_EQ(hit.relation, SegmentRelation::kTouching);
}

TEST(Intersect2d, CollinearOverlap) {
  const Segment a{{0, 0}, {2, 0}};
  const Segment b{{1, 0}, {3, 0}};
  const auto hit = intersect_segments_2d(a, b);
  EXPECT_EQ(hit.relation, SegmentRelation::kCollinearOverlap);
  EXPECT_NEAR(hit.at[0], 1.5, 1e-9);  // overlap midpoint
}

TEST(Intersect2d, CollinearDisjoint) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{2, 0}, {3, 0}};
  EXPECT_EQ(intersect_segments_2d(a, b).relation, SegmentRelation::kDisjoint);
}

TEST(Intersect2d, CollinearTouchingAtPoint) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{1, 0}, {2, 0}};
  EXPECT_EQ(intersect_segments_2d(a, b).relation, SegmentRelation::kTouching);
}

TEST(Intersect2d, VerticalSegments) {
  const Segment a{{1, 0}, {1, 4}};
  const Segment b{{0, 2}, {2, 2}};
  const auto hit = intersect_segments_2d(a, b);
  EXPECT_EQ(hit.relation, SegmentRelation::kProperCrossing);
  EXPECT_NEAR(hit.at[0], 1.0, 1e-12);
  EXPECT_NEAR(hit.at[1], 2.0, 1e-12);
}

TEST(Intersect2d, TinyScaleRobustness) {
  // Same geometry scaled down by 1e6 must classify identically.
  const double s = 1e-6;
  const Segment a{{0, 0}, {2 * s, 2 * s}};
  const Segment b{{0, 2 * s}, {2 * s, 0}};
  EXPECT_EQ(intersect_segments_2d(a, b).relation,
            SegmentRelation::kProperCrossing);
}

TEST(Intersect2d, Requires2d) {
  const Segment a{{0, 0, 0}, {1, 1, 1}};
  const Segment b{{0, 1, 0}, {1, 0, 0}};
  EXPECT_THROW(intersect_segments_2d(a, b), ConfigError);
}

TEST(SegmentDistance, ParallelSegments) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{0, 2}, {1, 2}};
  EXPECT_DOUBLE_EQ(segment_segment_distance(a, b), 2.0);
}

TEST(SegmentDistance, CrossingIsZero) {
  const Segment a{{0, 0}, {2, 2}};
  const Segment b{{0, 2}, {2, 0}};
  EXPECT_NEAR(segment_segment_distance(a, b), 0.0, 1e-12);
}

TEST(SegmentDistance, EndpointToEndpoint) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{4, 4}, {5, 5}};
  EXPECT_NEAR(segment_segment_distance(a, b), 5.0, 1e-12);
}

TEST(SegmentDistance, SkewLines3d) {
  // Classic skew pair: distance 1 along z.
  const Segment a{{0, 0, 0}, {1, 0, 0}};
  const Segment b{{0.5, -1, 1}, {0.5, 1, 1}};
  EXPECT_NEAR(segment_segment_distance(a, b), 1.0, 1e-12);
}

TEST(SegmentDistance, DegenerateSegments) {
  const Segment point_a{{0, 0}, {0, 0}};
  const Segment point_b{{3, 4}, {3, 4}};
  EXPECT_DOUBLE_EQ(segment_segment_distance(point_a, point_b), 5.0);
  const Segment seg{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(segment_segment_distance(point_b, seg), 4.0);
}

TEST(SegmentDistance, SymmetricInArguments) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Segment a{{rng.uniform(), rng.uniform()}, {rng.uniform(), rng.uniform()}};
    Segment b{{rng.uniform(), rng.uniform()}, {rng.uniform(), rng.uniform()}};
    EXPECT_NEAR(segment_segment_distance(a, b),
                segment_segment_distance(b, a), 1e-12);
  }
}

TEST(SegmentDistance, AgreesWithBruteForceSampling) {
  Rng rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    Segment a{{rng.uniform(), rng.uniform()}, {rng.uniform(), rng.uniform()}};
    Segment b{{rng.uniform(), rng.uniform()}, {rng.uniform(), rng.uniform()}};
    const double exact = segment_segment_distance(a, b);
    double brute = 1e300;
    for (int i = 0; i <= 100; ++i) {
      for (int j = 0; j <= 100; ++j) {
        const double u = i / 100.0, v = j / 100.0;
        const Point pa = {a.a[0] + u * (a.b[0] - a.a[0]),
                          a.a[1] + u * (a.b[1] - a.a[1])};
        const Point pb = {b.a[0] + v * (b.b[0] - b.a[0]),
                          b.a[1] + v * (b.b[1] - b.a[1])};
        brute = std::min(brute, distance(pa, pb));
      }
    }
    EXPECT_LE(exact, brute + 1e-9);
    EXPECT_GE(exact, brute - 0.02);  // sampling resolution bound
  }
}

TEST(Polyline, Length) {
  EXPECT_DOUBLE_EQ(polyline_length({{0, 0}, {3, 4}, {3, 10}}), 11.0);
  EXPECT_DOUBLE_EQ(polyline_length({{1, 1}}), 0.0);
  EXPECT_DOUBLE_EQ(polyline_length({}), 0.0);
}

}  // namespace
}  // namespace ftdiag::core
