#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <complex>

namespace ftdiag::linalg {
namespace {

TEST(Matrix, ZeroConstruction) {
  RealMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.square());
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
}

TEST(Matrix, InitializerList) {
  RealMatrix m{{1, 2}, {3, 4}};
  EXPECT_TRUE(m.square());
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, Identity) {
  const auto i = RealMatrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
}

TEST(Matrix, SetZeroKeepsShape) {
  RealMatrix m{{1, 2}, {3, 4}};
  m.set_zero();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(Matrix, Reshape) {
  RealMatrix m(2, 2);
  m(0, 0) = 5.0;
  m.reshape(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, Transpose) {
  RealMatrix m{{1, 2, 3}, {4, 5, 6}};
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, AddSubtract) {
  RealMatrix a{{1, 2}, {3, 4}};
  RealMatrix b{{4, 3}, {2, 1}};
  const auto sum = a + b;
  const auto diff = a - b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diff(0, 0), -3.0);
}

TEST(Matrix, ScalarMultiply) {
  RealMatrix a{{1, 2}, {3, 4}};
  const auto twice = a * 2.0;
  EXPECT_DOUBLE_EQ(twice(1, 0), 6.0);
}

TEST(Matrix, MatrixMultiply) {
  RealMatrix a{{1, 2}, {3, 4}};
  RealMatrix b{{5, 6}, {7, 8}};
  const auto c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyByIdentityIsIdentityOp) {
  RealMatrix a{{1, 2}, {3, 4}};
  EXPECT_TRUE(a * RealMatrix::identity(2) == a);
  EXPECT_TRUE(RealMatrix::identity(2) * a == a);
}

TEST(Matrix, MatrixVectorProduct) {
  RealMatrix a{{1, 2}, {3, 4}};
  const std::vector<double> x = {1.0, 1.0};
  const auto y = a * x;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, ComplexArithmetic) {
  using C = std::complex<double>;
  ComplexMatrix a{{C(0, 1), C(1, 0)}, {C(0, 0), C(2, -1)}};
  const auto sq = a * a;
  // (0,1)*(0,1) + (1,0)*(0,0) = -1
  EXPECT_DOUBLE_EQ(sq(0, 0).real(), -1.0);
  EXPECT_DOUBLE_EQ(sq(0, 0).imag(), 0.0);
}

TEST(Matrix, MaxAbs) {
  RealMatrix a{{-5, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
}

TEST(Matrix, EqualityOperator) {
  RealMatrix a{{1, 2}, {3, 4}};
  RealMatrix b{{1, 2}, {3, 4}};
  RealMatrix c{{1, 2}, {3, 5}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Matrix, TransposeTwiceIsIdentityOp) {
  RealMatrix a{{1, 2, 3}, {4, 5, 6}};
  EXPECT_TRUE(a.transpose().transpose() == a);
}

}  // namespace
}  // namespace ftdiag::linalg
