#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag::linalg {
namespace {

using C = std::complex<double>;

TEST(Lu, Solves2x2) {
  RealMatrix a{{2, 1}, {1, 3}};
  const auto x = solve_dense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolvesWithPivoting) {
  // Zero on the diagonal forces a row swap.
  RealMatrix a{{0, 1}, {1, 0}};
  const auto x = solve_dense(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  RealMatrix a{{1, 2}, {2, 4}};
  EXPECT_THROW((void)LuFactorization<double>(a), NumericError);
}

TEST(Lu, ZeroMatrixThrows) {
  RealMatrix a(3, 3);
  EXPECT_THROW((void)LuFactorization<double>(a), NumericError);
}

TEST(Lu, NonSquareThrows) {
  RealMatrix a(2, 3);
  EXPECT_THROW((void)LuFactorization<double>(a), NumericError);
}

TEST(Lu, Determinant) {
  RealMatrix a{{1, 2}, {3, 4}};
  const LuFactorization<double> lu(a);
  EXPECT_NEAR(lu.determinant(), -2.0, 1e-12);
}

TEST(Lu, DeterminantWithSwapKeepsSign) {
  RealMatrix a{{0, 1}, {1, 0}};  // det = -1
  const LuFactorization<double> lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
  EXPECT_EQ(lu.swap_count() % 2, 1u);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  RealMatrix a{{4, 7, 1}, {2, 6, 3}, {1, 1, 9}};
  const LuFactorization<double> lu(a);
  const auto prod = a * lu.inverse();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Lu, MultipleRhsMatrix) {
  RealMatrix a{{2, 0}, {0, 4}};
  RealMatrix b{{2, 4}, {8, 12}};
  const auto x = LuFactorization<double>(a).solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

TEST(Lu, ComplexSystem) {
  ComplexMatrix a{{C(1, 1), C(0, 0)}, {C(0, 0), C(0, 2)}};
  const auto x = solve_dense(a, std::vector<C>{C(2, 0), C(4, 0)});
  // (1+i) x0 = 2  ->  x0 = 1 - i
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  // 2i x1 = 4  ->  x1 = -2i
  EXPECT_NEAR(x[1].real(), 0.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), -2.0, 1e-12);
}

TEST(Lu, ConditionEstimateOrdersByConditioning) {
  RealMatrix well{{1, 0}, {0, 1}};
  RealMatrix badly{{1, 0}, {0, 1e-9}};
  EXPECT_LT(LuFactorization<double>(well).diagonal_condition_estimate(),
            LuFactorization<double>(badly).diagonal_condition_estimate());
}

/// Property sweep: random systems of several sizes must satisfy
/// ||Ax - b|| small relative to ||b||.
class LuResidualTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuResidualTest, ResidualIsSmall) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  RealMatrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 2.0;  // keep comfortably nonsingular
  }
  const auto x = solve_dense(a, b);
  const auto ax = a * x;
  double residual = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual = std::max(residual, std::fabs(ax[i] - b[i]));
    scale = std::max(scale, std::fabs(b[i]));
  }
  EXPECT_LT(residual, 1e-10 * (1.0 + scale));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuResidualTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

/// Complex property sweep with the same residual bound.
class ComplexLuResidualTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ComplexLuResidualTest, ResidualIsSmall) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  ComplexMatrix a(n, n);
  std::vector<C> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    a(i, i) += C(3.0, 0.0);
  }
  const auto x = solve_dense(a, b);
  const auto ax = a * x;
  double residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual = std::max(residual, std::abs(ax[i] - b[i]));
  }
  EXPECT_LT(residual, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ComplexLuResidualTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

// ----------------------------------------------------- in-place / blocked

/// A random comfortably conditioned complex system.
ComplexMatrix random_system(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  ComplexMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    a(i, i) += C(3.0, 0.0);
  }
  return a;
}

TEST(Lu, FactorInPlaceMatchesConstructor) {
  const ComplexMatrix a = random_system(17, 301);
  const LuFactorization<C> by_copy(a);

  ComplexMatrix scratch = a;
  LuFactorization<C> in_place;
  in_place.factor_in_place(scratch);
  EXPECT_EQ(in_place.size(), by_copy.size());
  EXPECT_EQ(in_place.swap_count(), by_copy.swap_count());

  std::vector<C> b(17);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = C(double(i), -1.0);
  const auto x_copy = by_copy.solve(b);
  const auto x_in_place = in_place.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(x_copy[i], x_in_place[i]) << "slot " << i;
  }
}

TEST(Lu, FactorInPlaceHandsBackAnEquallySizedBuffer) {
  LuFactorization<C> lu;
  ComplexMatrix a = random_system(9, 77);
  lu.factor_in_place(a);
  // The returned buffer is the factorization's previous storage: empty
  // after the first factor, 9x9 after the second.
  EXPECT_TRUE(a.empty());
  a = random_system(9, 78);
  lu.factor_in_place(a);
  EXPECT_EQ(a.rows(), 9u);
  EXPECT_EQ(a.cols(), 9u);
  // And the refactored object solves the *new* system.
  const ComplexMatrix fresh = random_system(9, 78);
  std::vector<C> b(9, C(1.0, 0.5));
  const auto x = lu.solve(b);
  const auto ax = fresh * x;
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_LT(std::abs(ax[i] - b[i]), 1e-10);
  }
}

TEST(Lu, SolveIntoMatchesSolve) {
  const ComplexMatrix a = random_system(23, 404);
  const LuFactorization<C> lu(a);
  Rng rng(11);
  std::vector<C> b(23), x(23);
  for (auto& v : b) v = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  lu.solve_into(b, x);
  const auto reference = lu.solve(b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(x[i], reference[i]) << "slot " << i;
  }
}

/// The blocked multi-RHS solve must agree column-for-column with the
/// single-RHS path — bit-exactly on dense random data, where the factor
/// has no structural zeros to reorder around.
TEST(Lu, BlockedMultiRhsMatchesColumnSolves) {
  for (const std::size_t m : {1u, 2u, 7u, 48u, 97u}) {
    const std::size_t n = 19;
    const ComplexMatrix a = random_system(n, 500 + m);
    const LuFactorization<C> lu(a);
    Rng rng(600 + m);
    ComplexMatrix b(n, m);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < m; ++c) {
        b(i, c) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
      }
    }
    ComplexMatrix x;
    lu.solve_into(b, x);
    ASSERT_EQ(x.rows(), n);
    ASSERT_EQ(x.cols(), m);
    std::vector<C> column(n), solved(n);
    for (std::size_t c = 0; c < m; ++c) {
      for (std::size_t i = 0; i < n; ++i) column[i] = b(i, c);
      lu.solve_into(column, solved);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(x(i, c), solved[i]) << "rhs " << c << " slot " << i;
      }
    }
  }
}

TEST(Lu, BlockedMultiRhsReusesTheTargetBuffer) {
  const std::size_t n = 8;
  const ComplexMatrix a = random_system(n, 900);
  const LuFactorization<C> lu(a);
  ComplexMatrix b(n, 3);
  for (std::size_t i = 0; i < n; ++i) b(i, 0) = C(1.0, 0.0);
  ComplexMatrix x;
  lu.solve_into(b, x);
  const C first = x(0, 0);
  lu.solve_into(b, x);  // same shape: buffer reused, same result
  EXPECT_EQ(x(0, 0), first);
}

}  // namespace
}  // namespace ftdiag::linalg
