#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag::linalg {
namespace {

using C = std::complex<double>;

TEST(Lu, Solves2x2) {
  RealMatrix a{{2, 1}, {1, 3}};
  const auto x = solve_dense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolvesWithPivoting) {
  // Zero on the diagonal forces a row swap.
  RealMatrix a{{0, 1}, {1, 0}};
  const auto x = solve_dense(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  RealMatrix a{{1, 2}, {2, 4}};
  EXPECT_THROW((void)LuFactorization<double>(a), NumericError);
}

TEST(Lu, ZeroMatrixThrows) {
  RealMatrix a(3, 3);
  EXPECT_THROW((void)LuFactorization<double>(a), NumericError);
}

TEST(Lu, NonSquareThrows) {
  RealMatrix a(2, 3);
  EXPECT_THROW((void)LuFactorization<double>(a), NumericError);
}

TEST(Lu, Determinant) {
  RealMatrix a{{1, 2}, {3, 4}};
  const LuFactorization<double> lu(a);
  EXPECT_NEAR(lu.determinant(), -2.0, 1e-12);
}

TEST(Lu, DeterminantWithSwapKeepsSign) {
  RealMatrix a{{0, 1}, {1, 0}};  // det = -1
  const LuFactorization<double> lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
  EXPECT_EQ(lu.swap_count() % 2, 1u);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  RealMatrix a{{4, 7, 1}, {2, 6, 3}, {1, 1, 9}};
  const LuFactorization<double> lu(a);
  const auto prod = a * lu.inverse();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Lu, MultipleRhsMatrix) {
  RealMatrix a{{2, 0}, {0, 4}};
  RealMatrix b{{2, 4}, {8, 12}};
  const auto x = LuFactorization<double>(a).solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

TEST(Lu, ComplexSystem) {
  ComplexMatrix a{{C(1, 1), C(0, 0)}, {C(0, 0), C(0, 2)}};
  const auto x = solve_dense(a, std::vector<C>{C(2, 0), C(4, 0)});
  // (1+i) x0 = 2  ->  x0 = 1 - i
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  // 2i x1 = 4  ->  x1 = -2i
  EXPECT_NEAR(x[1].real(), 0.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), -2.0, 1e-12);
}

TEST(Lu, ConditionEstimateOrdersByConditioning) {
  RealMatrix well{{1, 0}, {0, 1}};
  RealMatrix badly{{1, 0}, {0, 1e-9}};
  EXPECT_LT(LuFactorization<double>(well).diagonal_condition_estimate(),
            LuFactorization<double>(badly).diagonal_condition_estimate());
}

/// Property sweep: random systems of several sizes must satisfy
/// ||Ax - b|| small relative to ||b||.
class LuResidualTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuResidualTest, ResidualIsSmall) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  RealMatrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += 2.0;  // keep comfortably nonsingular
  }
  const auto x = solve_dense(a, b);
  const auto ax = a * x;
  double residual = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual = std::max(residual, std::fabs(ax[i] - b[i]));
    scale = std::max(scale, std::fabs(b[i]));
  }
  EXPECT_LT(residual, 1e-10 * (1.0 + scale));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuResidualTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

/// Complex property sweep with the same residual bound.
class ComplexLuResidualTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ComplexLuResidualTest, ResidualIsSmall) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  ComplexMatrix a(n, n);
  std::vector<C> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    a(i, i) += C(3.0, 0.0);
  }
  const auto x = solve_dense(a, b);
  const auto ax = a * x;
  double residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    residual = std::max(residual, std::abs(ax[i] - b[i]));
  }
  EXPECT_LT(residual, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ComplexLuResidualTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace ftdiag::linalg
