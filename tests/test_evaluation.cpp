#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "circuits/nf_biquad.hpp"
#include "circuits/tow_thomas.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

class EvaluationTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cut_ = new circuits::CircuitUnderTest(circuits::make_paper_cut());
    dict_ = new faults::FaultDictionary(faults::FaultDictionary::build(
        *cut_, faults::FaultUniverse::over_testable(*cut_)));
  }
  static void TearDownTestSuite() {
    delete dict_;
    delete cut_;
    dict_ = nullptr;
    cut_ = nullptr;
  }
  static circuits::CircuitUnderTest* cut_;
  static faults::FaultDictionary* dict_;

  // A frequency pair known to separate the paper CUT's trajectories well.
  static constexpr double kF1 = 700.0;
  static constexpr double kF2 = 1600.0;
};

circuits::CircuitUnderTest* EvaluationTest::cut_ = nullptr;
faults::FaultDictionary* EvaluationTest::dict_ = nullptr;

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix m;
  m.labels = {"A", "B"};
  m.counts = {{8, 2}, {1, 9}};
  EXPECT_EQ(m.total(), 20u);
  EXPECT_EQ(m.correct(), 17u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.85);
  EXPECT_DOUBLE_EQ(m.recall("A"), 0.8);
  EXPECT_DOUBLE_EQ(m.recall("B"), 0.9);
  EXPECT_THROW((void)m.recall("C"), ConfigError);
}

TEST_F(EvaluationTest, CleanConditionsGiveHighAccuracy) {
  EvaluationOptions options;
  options.trials = 150;
  const auto report = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                         SamplingPolicy{}, options);
  EXPECT_EQ(report.trials, 150u);
  EXPECT_GT(report.site_accuracy, 0.85);
  EXPECT_GE(report.group_accuracy, report.site_accuracy);
  EXPECT_GT(report.top2_accuracy, 0.95);
  EXPECT_LT(report.mean_deviation_error, 0.05);
  EXPECT_EQ(report.confusion.total(), 150u);
  EXPECT_DOUBLE_EQ(report.confusion.accuracy(), report.site_accuracy);
}

TEST_F(EvaluationTest, ReportsAmbiguityGroups) {
  EvaluationOptions options;
  options.trials = 10;
  const auto report = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                         SamplingPolicy{}, options);
  EXPECT_EQ(report.ambiguity_groups.size(), 7u);  // all singletons
}

TEST_F(EvaluationTest, DeterministicPerSeed) {
  EvaluationOptions options;
  options.trials = 40;
  options.seed = 99;
  const auto a = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                    SamplingPolicy{}, options);
  const auto b = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                    SamplingPolicy{}, options);
  EXPECT_EQ(a.correct_site, b.correct_site);
  EXPECT_EQ(a.confusion.counts, b.confusion.counts);
}

TEST_F(EvaluationTest, NoiseDegradesAccuracy) {
  EvaluationOptions clean;
  clean.trials = 120;
  EvaluationOptions noisy = clean;
  noisy.noise_sigma = 0.10;  // 10 % magnitude noise is brutal
  const auto r_clean = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                          SamplingPolicy{}, clean);
  const auto r_noisy = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                          SamplingPolicy{}, noisy);
  EXPECT_LE(r_noisy.site_accuracy, r_clean.site_accuracy);
}

TEST_F(EvaluationTest, ToleranceSpreadHandledGracefully) {
  EvaluationOptions options;
  options.trials = 80;
  options.tolerance = faults::ToleranceSpec{};
  const auto report = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                         SamplingPolicy{}, options);
  // Accuracy drops but the pipeline must remain sound.
  EXPECT_GT(report.site_accuracy, 0.3);
  EXPECT_EQ(report.trials, 80u);
}

TEST_F(EvaluationTest, BadOptionsRejected) {
  EvaluationOptions zero_trials;
  zero_trials.trials = 0;
  EXPECT_THROW(evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                  SamplingPolicy{}, zero_trials),
               ConfigError);

  EvaluationOptions bad_range;
  bad_range.min_abs_deviation = 0.3;
  bad_range.max_abs_deviation = 0.1;
  EXPECT_THROW(evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                  SamplingPolicy{}, bad_range),
               ConfigError);

  EXPECT_THROW(evaluate_diagnosis(*cut_, *dict_, {{}}, SamplingPolicy{},
                                  EvaluationOptions{}),
               ConfigError);
}

TEST_F(EvaluationTest, SmallDeviationsAreHarder) {
  EvaluationOptions small;
  small.trials = 100;
  small.min_abs_deviation = 0.02;
  small.max_abs_deviation = 0.05;
  small.noise_sigma = 0.01;
  EvaluationOptions large = small;
  large.min_abs_deviation = 0.25;
  large.max_abs_deviation = 0.40;
  const auto r_small = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                          SamplingPolicy{}, small);
  const auto r_large = evaluate_diagnosis(*cut_, *dict_, {{kF1, kF2}},
                                          SamplingPolicy{}, large);
  EXPECT_LE(r_small.site_accuracy, r_large.site_accuracy + 0.05);
}

TEST(EvaluationTowThomas, GroupAccuracyExceedsSiteAccuracy) {
  // The Tow-Thomas has structural ambiguity groups; group-resolution
  // accuracy must be visibly above exact-site accuracy.
  const auto cut = circuits::make_tow_thomas();
  const auto dict = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_testable(cut));
  EvaluationOptions options;
  options.trials = 150;
  const auto report = evaluate_diagnosis(cut, dict, {{700.0, 1600.0}},
                                         SamplingPolicy{}, options);
  EXPECT_GT(report.group_accuracy, report.site_accuracy + 0.1);
  EXPECT_GT(report.group_accuracy, 0.85);
  EXPECT_EQ(report.ambiguity_groups.size(), 5u);
}

}  // namespace
}  // namespace ftdiag::core
