#include "core/detection.hpp"

#include <gtest/gtest.h>

#include "circuits/nf_biquad.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

class DetectionTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cut_ = new circuits::CircuitUnderTest(circuits::make_paper_cut());
    dict_ = new faults::FaultDictionary(faults::FaultDictionary::build(
        *cut_, faults::FaultUniverse::over_testable(*cut_)));
  }
  static void TearDownTestSuite() {
    delete dict_;
    delete cut_;
    dict_ = nullptr;
    cut_ = nullptr;
  }
  static circuits::CircuitUnderTest* cut_;
  static faults::FaultDictionary* dict_;

  static DetectionCalibration one_percent() {
    DetectionCalibration c;
    c.tolerance.resistor_tolerance = 0.01;
    c.tolerance.capacitor_tolerance = 0.01;
    c.healthy_boards = 200;
    return c;
  }
  static const TestVector& vector() {
    static const TestVector tv{{700.0, 1600.0}};
    return tv;
  }
};

circuits::CircuitUnderTest* DetectionTest::cut_ = nullptr;
faults::FaultDictionary* DetectionTest::dict_ = nullptr;

TEST_F(DetectionTest, CalibrationProducesPositiveThreshold) {
  const auto detector = FaultDetector::calibrate(
      *cut_, *dict_, vector(), SamplingPolicy{}, one_percent());
  EXPECT_GT(detector.threshold(), 0.0);
  EXPECT_EQ(detector.healthy_radii().size(), 200u);
}

TEST_F(DetectionTest, ThresholdGrowsWithTolerance) {
  auto loose = one_percent();
  loose.tolerance.resistor_tolerance = 0.05;
  loose.tolerance.capacitor_tolerance = 0.05;
  const auto tight = FaultDetector::calibrate(*cut_, *dict_, vector(),
                                              SamplingPolicy{}, one_percent());
  const auto wide = FaultDetector::calibrate(*cut_, *dict_, vector(),
                                             SamplingPolicy{}, loose);
  EXPECT_GT(wide.threshold(), tight.threshold());
}

TEST_F(DetectionTest, OriginIsHealthy) {
  const auto detector = FaultDetector::calibrate(
      *cut_, *dict_, vector(), SamplingPolicy{}, one_percent());
  EXPECT_FALSE(detector.is_faulty({0.0, 0.0}));
}

TEST_F(DetectionTest, LargeSignatureIsFaulty) {
  const auto detector = FaultDetector::calibrate(
      *cut_, *dict_, vector(), SamplingPolicy{}, one_percent());
  EXPECT_TRUE(detector.is_faulty({0.5, 0.5}));
}

TEST_F(DetectionTest, BigFaultsFullyCovered) {
  const auto calibration = one_percent();
  const auto detector = FaultDetector::calibrate(
      *cut_, *dict_, vector(), SamplingPolicy{}, calibration);
  CoverageOptions options;
  options.min_abs_deviation = 0.20;  // far beyond the 1% tolerance cloud
  options.faults_per_site = 40;
  const auto report =
      measure_coverage(*cut_, *dict_, vector(), SamplingPolicy{}, detector,
                       calibration, options);
  EXPECT_GT(report.overall_coverage, 0.99);
  for (const auto& site : report.per_site) {
    EXPECT_GT(site.rate(), 0.95) << site.site;
    EXPECT_EQ(site.total, 40u);
  }
}

TEST_F(DetectionTest, FalseAlarmRateNearTarget) {
  auto calibration = one_percent();
  calibration.false_alarm_target = 0.05;
  calibration.healthy_boards = 600;
  const auto detector = FaultDetector::calibrate(
      *cut_, *dict_, vector(), SamplingPolicy{}, calibration);
  CoverageOptions options;
  options.healthy_boards = 600;
  options.faults_per_site = 5;  // coverage not under test here
  const auto report =
      measure_coverage(*cut_, *dict_, vector(), SamplingPolicy{}, detector,
                       calibration, options);
  EXPECT_LT(report.false_alarm_rate, 0.12);
}

TEST_F(DetectionTest, TinyFaultsBelowToleranceEscape) {
  auto calibration = one_percent();
  calibration.tolerance.resistor_tolerance = 0.05;
  calibration.tolerance.capacitor_tolerance = 0.05;
  const auto detector = FaultDetector::calibrate(
      *cut_, *dict_, vector(), SamplingPolicy{}, calibration);
  CoverageOptions options;
  options.min_abs_deviation = 0.05;
  options.max_abs_deviation = 0.08;  // inside the 5% tolerance cloud scale
  const auto report =
      measure_coverage(*cut_, *dict_, vector(), SamplingPolicy{}, detector,
                       calibration, options);
  EXPECT_LT(report.overall_coverage, 0.9);  // physically unavoidable escapes
}

TEST_F(DetectionTest, InvalidParametersRejected) {
  auto too_few = one_percent();
  too_few.healthy_boards = 3;
  EXPECT_THROW(FaultDetector::calibrate(*cut_, *dict_, vector(),
                                        SamplingPolicy{}, too_few),
               ConfigError);

  auto bad_target = one_percent();
  bad_target.false_alarm_target = 1.5;
  EXPECT_THROW(FaultDetector::calibrate(*cut_, *dict_, vector(),
                                        SamplingPolicy{}, bad_target),
               ConfigError);

  EXPECT_THROW(FaultDetector::calibrate(*cut_, *dict_, TestVector{{}},
                                        SamplingPolicy{}, one_percent()),
               ConfigError);

  const auto detector = FaultDetector::calibrate(
      *cut_, *dict_, vector(), SamplingPolicy{}, one_percent());
  CoverageOptions zero;
  zero.faults_per_site = 0;
  EXPECT_THROW(measure_coverage(*cut_, *dict_, vector(), SamplingPolicy{},
                                detector, one_percent(), zero),
               ConfigError);
}

TEST_F(DetectionTest, DeterministicPerSeed) {
  const auto a = FaultDetector::calibrate(*cut_, *dict_, vector(),
                                          SamplingPolicy{}, one_percent());
  const auto b = FaultDetector::calibrate(*cut_, *dict_, vector(),
                                          SamplingPolicy{}, one_percent());
  EXPECT_DOUBLE_EQ(a.threshold(), b.threshold());
}

}  // namespace
}  // namespace ftdiag::core
