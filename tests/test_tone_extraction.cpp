#include "mna/tone_extraction.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mna/transient.hpp"
#include "netlist/circuit.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {
namespace {

std::vector<double> make_time(std::size_t n, double dt) {
  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = static_cast<double>(i) * dt;
  return t;
}

std::vector<double> synth(const std::vector<double>& t, double amplitude,
                          double freq, double phase_deg, double offset = 0.0) {
  std::vector<double> x(t.size());
  const double phase = phase_deg * std::numbers::pi / 180.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    x[i] = offset +
           amplitude * std::sin(2.0 * std::numbers::pi * freq * t[i] + phase);
  }
  return x;
}

TEST(ToneExtraction, RecoversAmplitudeAndPhase) {
  const auto t = make_time(4000, 1e-5);  // 40 ms at 100 kS/s
  const auto x = synth(t, 2.5, 1000.0, 30.0);
  const auto tone = extract_tone(t, x, 1000.0);
  EXPECT_NEAR(tone.amplitude(), 2.5, 1e-6);
  EXPECT_NEAR(tone.phase_deg(), 30.0, 1e-4);
  EXPECT_DOUBLE_EQ(tone.frequency_hz, 1000.0);
}

TEST(ToneExtraction, ZeroPhaseSine) {
  const auto t = make_time(2000, 1e-5);
  const auto x = synth(t, 1.0, 500.0, 0.0);
  const auto tone = extract_tone(t, x, 500.0);
  EXPECT_NEAR(tone.amplitude(), 1.0, 1e-6);
  EXPECT_NEAR(tone.phase_deg(), 0.0, 1e-3);
}

TEST(ToneExtraction, DcOffsetRejected) {
  const auto t = make_time(4000, 1e-5);
  const auto x = synth(t, 1.0, 1000.0, 0.0, /*offset=*/5.0);
  const auto tone = extract_tone(t, x, 1000.0);
  // Whole-period window: the DC offset integrates to zero.
  EXPECT_NEAR(tone.amplitude(), 1.0, 1e-6);
}

TEST(ToneExtraction, TwoTonesSeparated) {
  const auto t = make_time(8000, 1e-5);
  auto x = synth(t, 1.5, 500.0, 10.0);
  const auto y = synth(t, 0.4, 2000.0, -45.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
  const auto tones = extract_tones(t, x, {500.0, 2000.0});
  ASSERT_EQ(tones.size(), 2u);
  // 500 Hz and 2 kHz are harmonically related -> coherent windows, so the
  // cross-talk is essentially zero.
  EXPECT_NEAR(tones[0].amplitude(), 1.5, 1e-4);
  EXPECT_NEAR(tones[0].phase_deg(), 10.0, 0.05);
  EXPECT_NEAR(tones[1].amplitude(), 0.4, 1e-4);
  EXPECT_NEAR(tones[1].phase_deg(), -45.0, 0.05);
}

TEST(ToneExtraction, IncoherentToneLeakageIsBounded) {
  const auto t = make_time(20000, 1e-5);
  auto x = synth(t, 1.0, 1000.0, 0.0);
  const auto other = synth(t, 1.0, 1237.7, 0.0);  // not on any common grid
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += other[i];
  const auto tone = extract_tone(t, x, 1000.0);
  EXPECT_NEAR(tone.amplitude(), 1.0, 0.02);  // leakage < 2% on a long window
}

TEST(ToneExtraction, WindowFractionControlsSpan) {
  const auto t = make_time(4000, 1e-5);
  const auto x = synth(t, 1.0, 1000.0, 0.0);
  for (double fraction : {0.25, 0.5, 1.0}) {
    EXPECT_NEAR(extract_tone(t, x, 1000.0, fraction).amplitude(), 1.0, 1e-6);
  }
}

TEST(ToneExtraction, InvalidInputsRejected) {
  const auto t = make_time(1000, 1e-5);
  const auto x = synth(t, 1.0, 1000.0, 0.0);
  EXPECT_THROW((void)extract_tone(t, {1.0, 2.0}, 1e3), ConfigError);       // length
  EXPECT_THROW((void)extract_tone({0.0}, {1.0}, 1e3), ConfigError);        // too few
  EXPECT_THROW((void)extract_tone(t, x, -5.0), ConfigError);               // freq
  EXPECT_THROW((void)extract_tone(t, x, 1e3, 0.0), ConfigError);           // window
  EXPECT_THROW((void)extract_tone(t, x, 1e3, 1.5), ConfigError);           // window
  EXPECT_THROW((void)extract_tone(t, x, 60000.0), ConfigError);            // Nyquist
  EXPECT_THROW((void)extract_tone(t, x, 10.0), ConfigError);  // < one period
}

TEST(ToneExtraction, NonUniformTimeRejected) {
  auto t = make_time(1000, 1e-5);
  t[500] += 5e-4;
  const auto x = synth(make_time(1000, 1e-5), 1.0, 1000.0, 0.0);
  EXPECT_THROW((void)extract_tone(t, x, 1000.0), ConfigError);
}

TEST(ToneExtraction, AgreesWithAcAnalysisOnRcFilter) {
  // End-to-end: transient of an RC low-pass driven at its cutoff must
  // yield |H| = 1/sqrt(2) from the extracted tone.
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_capacitor("C1", "out", "0", 159.15494e-9);  // fc ~ 1 kHz
  TransientAnalysis transient(c);
  TransientSpec spec;
  spec.dt = 1e-6;
  spec.t_stop = 20e-3;
  spec.waveforms["V1"] = SourceWaveform::sine(1.0, 1000.0);
  const auto record = transient.run(spec, {"out"});
  const auto tone = extract_tone(record.time_s, record.node("out"), 1000.0);
  EXPECT_NEAR(tone.amplitude(), 1.0 / std::sqrt(2.0), 2e-3);
  EXPECT_NEAR(tone.phase_deg(), -45.0, 0.5);
}

}  // namespace
}  // namespace ftdiag::mna
