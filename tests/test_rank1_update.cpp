/// Property/fuzz tests of the Sherman–Morrison rank-1 update: random
/// well-conditioned complex systems with random sparse perturbations must
/// match a from-scratch factorization of the perturbed matrix, and
/// near-singular updates must be refused (the engine's refactorization
/// fallback trigger).
#include "linalg/rank1.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <complex>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace ftdiag::linalg {
namespace {

using C = std::complex<double>;

C random_complex(Rng& rng) {
  return {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
}

/// Random diagonally dominant complex matrix (well-conditioned by
/// construction).
Matrix<C> random_system(Rng& rng, std::size_t n) {
  Matrix<C> a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = random_complex(rng);
    a(r, r) += C(static_cast<double>(n) + 2.0, 0.0);
  }
  return a;
}

std::vector<C> random_rhs(Rng& rng, std::size_t n) {
  std::vector<C> b(n);
  for (auto& value : b) value = random_complex(rng);
  return b;
}

/// Sparse vector with 1..3 random entries at distinct indices.
SparseVector<C> random_sparse(Rng& rng, std::size_t n) {
  SparseVector<C> v;
  const std::size_t count =
      static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t k = 0; k < count && v.entries.size() < n; ++k) {
    const std::size_t index =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
    bool duplicate = false;
    for (const auto& [i, value] : v.entries) duplicate |= (i == index);
    if (!duplicate) v.add(index, random_complex(rng));
  }
  if (v.empty()) v.add(0, C(1.0, 0.0));
  return v;
}

/// Dense A + scale * u * v^T.
Matrix<C> perturbed(const Matrix<C>& a, const SparseVector<C>& u,
                    const SparseVector<C>& v, const C& scale) {
  Matrix<C> out = a;
  for (const auto& [r, uv] : u.entries) {
    for (const auto& [c, vv] : v.entries) out(r, c) += scale * uv * vv;
  }
  return out;
}

double norm(const std::vector<C>& x) {
  double acc = 0.0;
  for (const auto& value : x) acc += std::norm(value);
  return std::sqrt(acc);
}

TEST(Rank1Update, RandomSingleEntryPerturbationsMatchFromScratchSolve) {
  Rng rng(20260731);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(3, 16));
    const Matrix<C> a = random_system(rng, n);
    const std::vector<C> b = random_rhs(rng, n);

    // Single-entry perturbation: A'(i, j) = A(i, j) + scale.
    SparseVector<C> u, v;
    u.add(static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
          C(1.0, 0.0));
    v.add(static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
          C(1.0, 0.0));
    const C scale = random_complex(rng);

    const LuFactorization<C> lu(a);
    const std::vector<C> x0 = lu.solve(b);
    const std::vector<C> w = lu.solve(u.densify(n));
    const auto updated = sherman_morrison_solve(x0, w, v, scale);
    ASSERT_TRUE(updated.has_value()) << "trial " << trial;

    const std::vector<C> direct = solve_dense(perturbed(a, u, v, scale), b);
    ASSERT_EQ(updated->size(), direct.size());
    const double bound = 1e-10 * (1.0 + norm(direct));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::abs((*updated)[i] - direct[i]), bound)
          << "trial " << trial << " component " << i;
    }
  }
}

TEST(Rank1Update, RandomSparsePerturbationsMatchFromScratchSolve) {
  Rng rng(42424242);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(4, 20));
    const Matrix<C> a = random_system(rng, n);
    const std::vector<C> b = random_rhs(rng, n);
    const SparseVector<C> u = random_sparse(rng, n);
    const SparseVector<C> v = random_sparse(rng, n);
    const C scale = random_complex(rng);

    const LuFactorization<C> lu(a);
    const std::vector<C> x0 = lu.solve(b);
    const std::vector<C> w = lu.solve(u.densify(n));
    const auto updated = sherman_morrison_solve(x0, w, v, scale);
    ASSERT_TRUE(updated.has_value()) << "trial " << trial;

    const std::vector<C> direct = solve_dense(perturbed(a, u, v, scale), b);
    const double bound = 1e-10 * (1.0 + norm(direct));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::abs((*updated)[i] - direct[i]), bound)
          << "trial " << trial << " component " << i;
    }
  }
}

TEST(Rank1Update, ComponentVariantAgreesWithFullSolve) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 8;
    const Matrix<C> a = random_system(rng, n);
    const std::vector<C> b = random_rhs(rng, n);
    const SparseVector<C> u = random_sparse(rng, n);
    const SparseVector<C> v = random_sparse(rng, n);
    const C scale = random_complex(rng);

    const LuFactorization<C> lu(a);
    const std::vector<C> x0 = lu.solve(b);
    const std::vector<C> w = lu.solve(u.densify(n));
    const auto full = sherman_morrison_solve(x0, w, v, scale);
    ASSERT_TRUE(full.has_value());
    const C v_dot_x0 = sparse_dot(v, x0);
    const C v_dot_w = sparse_dot(v, w);
    for (std::size_t i = 0; i < n; ++i) {
      const auto component = sherman_morrison_component(
          x0[i], w[i], v_dot_x0, v_dot_w, scale);
      ASSERT_TRUE(component.has_value());
      // Same arithmetic, so bit-identical — this is what makes the
      // engine's output-only extraction equivalent to the full update.
      EXPECT_EQ(component->real(), (*full)[i].real());
      EXPECT_EQ(component->imag(), (*full)[i].imag());
    }
  }
}

TEST(Rank1Update, SingularUpdateIsRefused) {
  // A = I, u = v = e0, scale = -1 makes A' exactly singular: the
  // denominator 1 + scale * (v . A^{-1} u) is 0.
  const std::size_t n = 4;
  const Matrix<C> a = Matrix<C>::identity(n);
  const LuFactorization<C> lu(a);
  SparseVector<C> u, v;
  u.add(0, C(1.0, 0.0));
  v.add(0, C(1.0, 0.0));
  const std::vector<C> b(n, C(1.0, 0.0));
  const std::vector<C> x0 = lu.solve(b);
  const std::vector<C> w = lu.solve(u.densify(n));
  EXPECT_FALSE(sherman_morrison_solve(x0, w, v, C(-1.0, 0.0)).has_value());
}

TEST(Rank1Update, NearSingularUpdateTriggersTheFallback) {
  // scale = -1 + eps leaves |denominator| = eps: far below the default
  // growth bound, so the update must be refused — the engine then solves
  // that fault x frequency pair by full refactorization.
  const std::size_t n = 4;
  const LuFactorization<C> lu(Matrix<C>::identity(n));
  SparseVector<C> u, v;
  u.add(0, C(1.0, 0.0));
  v.add(0, C(1.0, 0.0));
  const std::vector<C> b(n, C(1.0, 0.0));
  const std::vector<C> x0 = lu.solve(b);
  const std::vector<C> w = lu.solve(u.densify(n));
  const C near_singular(-1.0 + 1e-12, 0.0);
  EXPECT_FALSE(sherman_morrison_solve(x0, w, v, near_singular).has_value());
  // A permissive growth bound accepts the same update.
  EXPECT_TRUE(
      sherman_morrison_solve(x0, w, v, near_singular, 1e14).has_value());
}

TEST(Rank1Update, NonFiniteScaleFailsClosed) {
  // A deviation that zeroes a component value yields an infinite
  // conductance delta; the guard must refuse the update (so the engine
  // refactorizes, matching the naive path) instead of emitting NaN.
  const std::size_t n = 4;
  const LuFactorization<C> lu(Matrix<C>::identity(n));
  SparseVector<C> u, v;
  u.add(0, C(1.0, 0.0));
  v.add(0, C(1.0, 0.0));
  const std::vector<C> b(n, C(1.0, 0.0));
  const std::vector<C> x0 = lu.solve(b);
  const std::vector<C> w = lu.solve(u.densify(n));
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(sherman_morrison_solve(x0, w, v, C(inf, 0.0)).has_value());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(sherman_morrison_solve(x0, w, v, C(nan, 0.0)).has_value());
}

TEST(Rank1Update, WellConditionedUpdateIsAcceptedAtTightBound) {
  const std::size_t n = 4;
  const LuFactorization<C> lu(Matrix<C>::identity(n));
  SparseVector<C> u, v;
  u.add(1, C(1.0, 0.0));
  v.add(2, C(1.0, 0.0));
  const std::vector<C> b(n, C(1.0, 0.0));
  const std::vector<C> x0 = lu.solve(b);
  const std::vector<C> w = lu.solve(u.densify(n));
  EXPECT_TRUE(
      sherman_morrison_solve(x0, w, v, C(0.5, 0.25), 10.0).has_value());
}

}  // namespace
}  // namespace ftdiag::linalg
