/// Property tests for the observability layer: counter exactness and
/// histogram merge correctness under threads, quantile monotonicity and
/// interpolation, registry label normalisation/cardinality, collector
/// RAII, stage spans, the slow-trace ring, and both exposition formats.
/// The TSan CI job runs this suite to vet the lock-free hot paths.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace ftdiag {
namespace {

/// Restores the timing-layer switch on scope exit so a test cannot leak
/// a disabled clock into the rest of the suite.
struct EnabledGuard {
  bool saved = obs::enabled();
  ~EnabledGuard() { obs::set_enabled(saved); }
};

// ------------------------------------------------------------- counters

TEST(ObsCounter, ExactUnderThreads) {
  obs::Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsShardedCounter, ExactUnderThreads) {
  obs::ShardedCounter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsGauge, AddAndSubCancelUnderThreads) {
  obs::Gauge gauge;
  constexpr std::size_t kPairs = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kPairs; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) gauge.add(3);
    });
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) gauge.sub(3);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsGauge, MaxOfConvergesToMaximum) {
  obs::Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i <= 1000; ++i) gauge.max_of(t * 1000 + i);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 8000);
}

// ----------------------------------------------------------- histograms

TEST(ObsHistogram, RejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), ConfigError);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), ConfigError);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), ConfigError);
}

TEST(ObsHistogram, MergeUnderThreadsMatchesSequential) {
  const EnabledGuard guard;
  obs::set_enabled(true);

  // One deterministic sample set, recorded once sequentially and once
  // split over 8 threads: bucket contents, count, and therefore every
  // quantile must come out identical.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 2000.0);
  std::vector<double> samples(80'000);
  for (double& v : samples) v = dist(rng);

  const std::vector<double> bounds = obs::Histogram::latency_us_bounds();
  obs::Histogram sequential(bounds);
  for (double v : samples) sequential.observe(v);

  obs::Histogram threaded(bounds);
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  const std::size_t chunk = samples.size() / kThreads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t begin = t * chunk;
      const std::size_t end =
          t + 1 == kThreads ? samples.size() : begin + chunk;
      for (std::size_t i = begin; i < end; ++i) threaded.observe(samples[i]);
    });
  }
  for (auto& thread : threads) thread.join();

  const obs::HistogramSnapshot a = sequential.snapshot();
  const obs::HistogramSnapshot b = threaded.snapshot();
  EXPECT_EQ(b.count, samples.size());
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_NEAR(a.sum, b.sum, 1e-6 * a.sum);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
}

TEST(ObsHistogram, QuantileIsMonotoneInQ) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  obs::Histogram histogram(obs::Histogram::latency_us_bounds());
  std::mt19937 rng(11);
  std::lognormal_distribution<double> dist(5.0, 2.0);
  for (int i = 0; i < 20'000; ++i) histogram.observe(dist(rng));

  const obs::HistogramSnapshot snap = histogram.snapshot();
  double previous = snap.quantile(0.0);
  for (double q = 0.01; q <= 1.0 + 1e-9; q += 0.01) {
    const double value = snap.quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(ObsHistogram, QuantileInterpolatesWithinBucket) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  obs::Histogram histogram({10.0, 20.0, 40.0});
  // All mass in the (10, 20] bucket: every quantile must land inside it
  // and move linearly across it.
  for (int i = 0; i < 100; ++i) histogram.observe(15.0);
  const obs::HistogramSnapshot snap = histogram.snapshot();
  for (double q : {0.1, 0.5, 0.9}) {
    const double value = snap.quantile(q);
    EXPECT_GT(value, 10.0) << "q=" << q;
    EXPECT_LE(value, 20.0) << "q=" << q;
  }
  EXPECT_LT(snap.quantile(0.1), snap.quantile(0.9));
}

TEST(ObsHistogram, OverflowClampsToLastBoundAndEmptyIsZero) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  obs::Histogram histogram({10.0, 20.0, 40.0});
  EXPECT_EQ(histogram.snapshot().quantile(0.5), 0.0);
  histogram.observe(1e9);
  EXPECT_EQ(histogram.snapshot().quantile(1.0), 40.0);
}

TEST(ObsHistogram, ObserveGatedByEnabled) {
  const EnabledGuard guard;
  obs::Histogram histogram({10.0, 20.0});
  obs::set_enabled(false);
  histogram.observe(5.0);
  EXPECT_EQ(histogram.count(), 0u);
  obs::set_enabled(true);
  histogram.observe(5.0);
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(ObsHistogram, BatchAccumulatorMatchesDirectObserves) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  const std::vector<double> bounds{1.0, 10.0, 100.0, 1000.0};
  obs::Histogram direct(bounds);
  obs::Histogram batched(bounds);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(0.5 * static_cast<double>(i % 47) *
                      static_cast<double>(1 + i % 13));
  }
  {
    obs::HistogramBatch batch(batched);
    for (double v : samples) {
      direct.observe(v);
      batch.observe(v);
    }
    // Nothing lands until the batch flushes (scope exit here).
    EXPECT_EQ(batched.count(), 0u);
    batch.flush();
    batch.flush();  // idempotent: destructor must not double-merge
  }
  EXPECT_EQ(batched.snapshot().buckets, direct.snapshot().buckets);
  EXPECT_DOUBLE_EQ(batched.sum(), direct.sum());
  EXPECT_EQ(batched.count(), samples.size());
}

TEST(ObsHistogram, BatchAccumulatorGatedByEnabled) {
  const EnabledGuard guard;
  obs::Histogram histogram({10.0, 20.0});
  obs::HistogramBatch batch(histogram);
  obs::set_enabled(false);
  batch.observe(5.0);
  batch.flush();
  EXPECT_EQ(histogram.count(), 0u);
  obs::set_enabled(true);
  batch.observe(5.0);
  batch.flush();
  EXPECT_EQ(histogram.count(), 1u);
}

// ------------------------------------------------------------- registry

TEST(ObsRegistry, SameNameAndLabelsReturnSameObject) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("ftdiag_test_total", {{"k", "v"}});
  obs::Counter& b = registry.counter("ftdiag_test_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(ObsRegistry, LabelOrderIsNormalised) {
  obs::Registry registry;
  obs::Counter& a =
      registry.counter("ftdiag_test_total", {{"a", "1"}, {"b", "2"}});
  obs::Counter& b =
      registry.counter("ftdiag_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(ObsRegistry, DistinctLabelValuesAreDistinctSeries) {
  obs::Registry registry;
  for (int i = 0; i < 100; ++i) {
    registry.counter("ftdiag_test_total", {{"shard", std::to_string(i)}})
        .inc(static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(registry.metric_count(), 100u);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.samples.size(), 100u);
  const obs::Sample* sample =
      snap.find("ftdiag_test_total", {{"shard", "42"}});
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 42.0);
}

TEST(ObsRegistry, KindMismatchThrows) {
  obs::Registry registry;
  registry.counter("ftdiag_test_metric");
  EXPECT_THROW(registry.gauge("ftdiag_test_metric"), ConfigError);
  EXPECT_THROW(registry.histogram("ftdiag_test_metric", {1.0}), ConfigError);
  EXPECT_THROW(registry.sharded_counter("ftdiag_test_metric"), ConfigError);
}

TEST(ObsRegistry, ConcurrentGetOrCreateIsSafe) {
  obs::Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        registry.counter("ftdiag_race_total", {{"i", std::to_string(i)}})
            .inc();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.metric_count(), 50u);
  const obs::Snapshot snap = registry.snapshot();
  for (const obs::Sample& sample : snap.samples) {
    EXPECT_EQ(sample.value, 8.0) << sample.labels[0].second;
  }
}

TEST(ObsRegistry, CollectorAppearsUntilHandleReleased) {
  obs::Registry registry;
  {
    obs::Registry::CollectorHandle handle =
        registry.add_collector([](obs::SampleSink& sink) {
          sink.gauge("ftdiag_collected", 7.0, {{"from", "test"}});
        });
    const obs::Sample* sample = registry.snapshot().find("ftdiag_collected");
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->value, 7.0);
    EXPECT_EQ(sample->kind, obs::Sample::Kind::kGauge);
  }
  EXPECT_EQ(registry.snapshot().find("ftdiag_collected"), nullptr);
}

// -------------------------------------------------------------- tracing

TEST(ObsTracer, SpanRecordsIntoItsStageHistogram) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  obs::Registry registry;
  obs::Tracer tracer(registry);
  {
    obs::Span span(obs::Stage::kSolve, /*request_id=*/1, tracer);
  }
  EXPECT_EQ(tracer.stage_histogram(obs::Stage::kSolve).count(), 1u);
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    if (static_cast<obs::Stage>(s) == obs::Stage::kSolve) continue;
    EXPECT_EQ(tracer.stage_histogram(static_cast<obs::Stage>(s)).count(), 0u);
  }
}

TEST(ObsTracer, SpanFinishIsIdempotentAndCancelDrops) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  obs::Registry registry;
  obs::Tracer tracer(registry);
  obs::Span span(obs::Stage::kScore, 0, tracer);
  span.finish();
  span.finish();
  EXPECT_EQ(tracer.stage_histogram(obs::Stage::kScore).count(), 1u);
  obs::Span dropped(obs::Stage::kScore, 0, tracer);
  dropped.cancel();
  dropped.finish();
  EXPECT_EQ(tracer.stage_histogram(obs::Stage::kScore).count(), 1u);
}

TEST(ObsTracer, DisabledSpanRecordsNothing) {
  const EnabledGuard guard;
  obs::set_enabled(false);
  obs::Registry registry;
  obs::Tracer tracer(registry);
  {
    obs::Span span(obs::Stage::kSolve, 0, tracer);
  }
  EXPECT_EQ(tracer.stage_histogram(obs::Stage::kSolve).count(), 0u);
}

TEST(ObsTracer, SlowRingKeepsOnlySlowSamplesAndIsBounded) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  obs::Registry registry;
  obs::Tracer tracer(registry, /*slow_threshold_us=*/100.0);

  tracer.record(obs::Stage::kSolve, 50.0, /*request_id=*/1);
  EXPECT_TRUE(tracer.slow_traces().empty());

  const std::size_t overfill = obs::Tracer::kRingCapacity + 40;
  for (std::size_t i = 0; i < overfill; ++i) {
    tracer.record(obs::Stage::kReplySend, 200.0 + static_cast<double>(i),
                  /*request_id=*/i);
  }
  const std::vector<obs::SlowTrace> traces = tracer.slow_traces();
  ASSERT_EQ(traces.size(), obs::Tracer::kRingCapacity);
  // Oldest entries were evicted: the ring starts 40 records in and stays
  // in recording order.
  EXPECT_EQ(traces.front().request_id, 40u);
  EXPECT_EQ(traces.back().request_id, overfill - 1);
  for (std::size_t i = 1; i < traces.size(); ++i) {
    EXPECT_EQ(traces[i].seq, traces[i - 1].seq + 1);
  }
}

TEST(ObsTracer, StageNamesAreStable) {
  EXPECT_STREQ(obs::stage_name(obs::Stage::kNetRecv), "net_recv");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kBatchCoalesce), "batch_coalesce");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kDictFetch), "dict_fetch");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kSolve), "solve");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kScore), "score");
  EXPECT_STREQ(obs::stage_name(obs::Stage::kReplySend), "reply_send");
}

// ------------------------------------------------------------ exporters

TEST(ObsExport, PrometheusRendersAllKinds) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  obs::Registry registry;
  registry.counter("ftdiag_reqs_total", {{"kind", "good"}}, "requests").inc(3);
  registry.gauge("ftdiag_depth", {}, "queue depth").set(-2);
  registry.histogram("ftdiag_lat_us", {10.0, 100.0}, {}, "latency")
      .observe(40.0);

  const std::string text = obs::render_prometheus(registry);
  EXPECT_NE(text.find("# HELP ftdiag_reqs_total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ftdiag_reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("ftdiag_reqs_total{kind=\"good\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ftdiag_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("ftdiag_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ftdiag_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("ftdiag_lat_us_bucket{le=\"10\"} 0"), std::string::npos);
  EXPECT_NE(text.find("ftdiag_lat_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ftdiag_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ftdiag_lat_us_sum 40"), std::string::npos);
  EXPECT_NE(text.find("ftdiag_lat_us_count 1"), std::string::npos);
}

TEST(ObsExport, JsonRendersQuantilesAndEscapes) {
  const EnabledGuard guard;
  obs::set_enabled(true);
  obs::Registry registry;
  registry.counter("ftdiag_reqs_total", {{"path", "a\"b"}}).inc();
  obs::Histogram& histogram =
      registry.histogram("ftdiag_lat_us", {10.0, 100.0});
  for (int i = 0; i < 10; ++i) histogram.observe(40.0);

  const std::string json = obs::render_json(registry);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ftdiag_reqs_total\""), std::string::npos);
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":10"), std::string::npos);
}

}  // namespace
}  // namespace ftdiag
