#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace ftdiag::str {
namespace {

TEST(Trim, RemovesLeadingAndTrailingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t\n"), "");
}

TEST(Trim, NoWhitespaceIsIdentity) { EXPECT_EQ(trim("abc"), "abc"); }

TEST(Case, ToLowerAndUpper) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_upper("AbC123"), "ABC123");
}

TEST(Split, BasicDelimiter) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, EmptyStringYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWs, CollapsesRuns) {
  const auto parts = split_ws("  a \t b\n  c ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWs, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t ").empty());
}

TEST(Affix, StartsWithEndsWith) {
  EXPECT_TRUE(starts_with("netlist", "net"));
  EXPECT_FALSE(starts_with("net", "netlist"));
  EXPECT_TRUE(ends_with("fault.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "fault.csv"));
}

TEST(IEquals, CaseInsensitiveComparison) {
  EXPECT_TRUE(iequals("OpAmp", "opamp"));
  EXPECT_FALSE(iequals("opamp", "opamps"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(format("empty"), "empty");
}

}  // namespace
}  // namespace ftdiag::str
