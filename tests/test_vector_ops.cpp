#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <complex>

namespace ftdiag::linalg {
namespace {

TEST(Norms, Euclidean) {
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{}), 0.0);
}

TEST(Norms, EuclideanComplex) {
  using C = std::complex<double>;
  EXPECT_DOUBLE_EQ(norm2(std::vector<C>{C(3, 4)}), 5.0);
}

TEST(Norms, Infinity) {
  EXPECT_DOUBLE_EQ(norm_inf(std::vector<double>{1.0, -7.0, 3.0}), 7.0);
}

TEST(Subtract, Elementwise) {
  const auto d = subtract(std::vector<double>{3, 5}, std::vector<double>{1, 2});
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
}

TEST(Dot, NoConjugation) {
  EXPECT_DOUBLE_EQ(dot(std::vector<double>{1, 2}, std::vector<double>{3, 4}),
                   11.0);
}

TEST(Linspace, EndpointsExact) {
  const auto v = linspace(0.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
}

TEST(Linspace, SinglePoint) {
  const auto v = linspace(3.0, 9.0, 1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
}

TEST(Linspace, UnevenRangeEndpointStillExact) {
  const auto v = linspace(0.1, 0.3, 7);
  EXPECT_DOUBLE_EQ(v.back(), 0.3);
}

TEST(Logspace, DecadeSpacing) {
  const auto v = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 10.0, 1e-9);
  EXPECT_NEAR(v[2], 100.0, 1e-7);
  EXPECT_DOUBLE_EQ(v[3], 1000.0);
}

TEST(Logspace, MonotoneAscending) {
  const auto v = logspace(10.0, 1e5, 100);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
}

TEST(Logspace, RejectsNonPositive) {
  EXPECT_DEATH(logspace(0.0, 10.0, 3), "positive");
  EXPECT_DEATH(logspace(-1.0, 10.0, 3), "positive");
}

}  // namespace
}  // namespace ftdiag::linalg
