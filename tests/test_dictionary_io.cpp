#include "io/dictionary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "circuits/nf_biquad.hpp"
#include "util/error.hpp"

namespace ftdiag::io {
namespace {

class DictionaryIoTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    const auto cut = circuits::make_paper_cut();
    faults::DeviationSpec spec;
    spec.step_fraction = 0.2;  // small dictionary keeps the test quick
    dict_ = new faults::FaultDictionary(faults::FaultDictionary::build(
        cut, faults::FaultUniverse::over_testable(cut, spec),
        std::vector<double>{100.0, 1000.0, 10000.0}));
  }
  static void TearDownTestSuite() {
    delete dict_;
    dict_ = nullptr;
  }
  static faults::FaultDictionary* dict_;
};

faults::FaultDictionary* DictionaryIoTest::dict_ = nullptr;

std::string serialized(const faults::FaultDictionary& dict) {
  std::ostringstream os;
  save_dictionary(os, dict);
  return os.str();
}

TEST_F(DictionaryIoTest, RoundTripPreservesEverything) {
  const auto loaded = load_dictionary(serialized(*dict_));
  ASSERT_EQ(loaded.fault_count(), dict_->fault_count());
  EXPECT_EQ(loaded.site_labels(), dict_->site_labels());
  EXPECT_EQ(loaded.frequencies(), dict_->frequencies());
  EXPECT_NEAR(loaded.golden().max_deviation(dict_->golden()), 0.0, 1e-10);
  for (std::size_t i = 0; i < loaded.fault_count(); ++i) {
    EXPECT_EQ(loaded.entries()[i].fault, dict_->entries()[i].fault);
    EXPECT_NEAR(loaded.entries()[i].response.max_deviation(
                    dict_->entries()[i].response),
                0.0, 1e-10);
  }
}

TEST_F(DictionaryIoTest, LoadedDictionaryDrivesTheFlow) {
  const auto loaded = load_dictionary(serialized(*dict_));
  // entries_for + trajectory building must work exactly as on the original.
  for (const auto& site : loaded.site_labels()) {
    EXPECT_EQ(loaded.entries_for(site).size(),
              dict_->entries_for(site).size());
  }
}

TEST_F(DictionaryIoTest, OpAmpFaultSitesRoundTrip) {
  circuits::NfBiquadDesign design;
  design.ideal_opamps = false;
  const auto cut = circuits::make_nf_biquad(design);
  faults::DeviationSpec spec;
  spec.step_fraction = 0.4;
  const auto dict = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_opamp_params(cut, spec),
      std::vector<double>{1000.0, 5000.0});
  const auto loaded = load_dictionary(serialized(dict));
  EXPECT_EQ(loaded.site_labels(), dict.site_labels());
  EXPECT_EQ(loaded.entries().front().fault.site.target,
            faults::FaultSite::Target::kOpAmpParam);
}

TEST_F(DictionaryIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ftdiag_dict.csv";
  save_dictionary_file(path, *dict_);
  const auto loaded = load_dictionary_file(path);
  EXPECT_EQ(loaded.fault_count(), dict_->fault_count());
  std::remove(path.c_str());
}

TEST_F(DictionaryIoTest, MalformedInputsRejected) {
  EXPECT_THROW(load_dictionary(""), ParseError);
  EXPECT_THROW(load_dictionary("site,target\nx,value\n"), ParseError);
  // No golden series.
  EXPECT_THROW(
      load_dictionary("site,target,param,deviation,freq_hz,re,im\n"
                      "R1,value,,0.1,100,1,0\n"),
      ParseError);
  // Unknown target.
  EXPECT_THROW(
      load_dictionary("site,target,param,deviation,freq_hz,re,im\n"
                      ",,,0,100,1,0\n"
                      "R1,bogus,,0.1,100,1,0\n"),
      ParseError);
  // Unknown op-amp parameter.
  EXPECT_THROW(
      load_dictionary("site,target,param,deviation,freq_hz,re,im\n"
                      ",,,0,100,1,0\n"
                      "OA1,opamp,zeta,0.1,100,1,0\n"),
      ParseError);
}

TEST_F(DictionaryIoTest, GridMismatchRejectedByFromParts) {
  // An entry on a different grid than the golden must be refused.
  EXPECT_THROW(
      load_dictionary("site,target,param,deviation,freq_hz,re,im\n"
                      ",,,0,100,1,0\n"
                      ",,,0,1000,0.9,0\n"
                      "R1,value,,0.1,100,1,0\n"),
      ConfigError);
}

TEST(DictionaryFromParts, EmptyEntriesRejected) {
  EXPECT_THROW(faults::FaultDictionary::from_parts(
                   mna::AcResponse({1.0}, {mna::Complex(1, 0)}), {}),
               ConfigError);
}

}  // namespace
}  // namespace ftdiag::io
