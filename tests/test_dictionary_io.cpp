#include "io/dictionary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "circuits/nf_biquad.hpp"
#include "util/error.hpp"

namespace ftdiag::io {
namespace {

class DictionaryIoTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    const auto cut = circuits::make_paper_cut();
    faults::DeviationSpec spec;
    spec.step_fraction = 0.2;  // small dictionary keeps the test quick
    dict_ = new faults::FaultDictionary(faults::FaultDictionary::build(
        cut, faults::FaultUniverse::over_testable(cut, spec),
        std::vector<double>{100.0, 1000.0, 10000.0}));
  }
  static void TearDownTestSuite() {
    delete dict_;
    dict_ = nullptr;
  }
  static faults::FaultDictionary* dict_;
};

faults::FaultDictionary* DictionaryIoTest::dict_ = nullptr;

std::string serialized(const faults::FaultDictionary& dict) {
  std::ostringstream os;
  save_dictionary(os, dict);
  return os.str();
}

void expect_bit_identical(const faults::FaultDictionary& a,
                          const faults::FaultDictionary& b) {
  ASSERT_EQ(a.fault_count(), b.fault_count());
  EXPECT_EQ(a.frequencies(), b.frequencies());
  EXPECT_EQ(a.golden().values(), b.golden().values());
  EXPECT_EQ(a.site_labels(), b.site_labels());
  for (std::size_t i = 0; i < a.fault_count(); ++i) {
    EXPECT_EQ(a.entries()[i].fault, b.entries()[i].fault);
    EXPECT_EQ(a.entries()[i].response.values(),
              b.entries()[i].response.values());
  }
}

TEST_F(DictionaryIoTest, RoundTripPreservesEverything) {
  const auto loaded = load_dictionary(serialized(*dict_));
  ASSERT_EQ(loaded.fault_count(), dict_->fault_count());
  EXPECT_EQ(loaded.site_labels(), dict_->site_labels());
  EXPECT_EQ(loaded.frequencies(), dict_->frequencies());
  EXPECT_NEAR(loaded.golden().max_deviation(dict_->golden()), 0.0, 1e-10);
  for (std::size_t i = 0; i < loaded.fault_count(); ++i) {
    EXPECT_EQ(loaded.entries()[i].fault, dict_->entries()[i].fault);
    EXPECT_NEAR(loaded.entries()[i].response.max_deviation(
                    dict_->entries()[i].response),
                0.0, 1e-10);
  }
}

TEST_F(DictionaryIoTest, LoadedDictionaryDrivesTheFlow) {
  const auto loaded = load_dictionary(serialized(*dict_));
  // entries_for + trajectory building must work exactly as on the original.
  for (const auto& site : loaded.site_labels()) {
    EXPECT_EQ(loaded.entries_for(site).size(),
              dict_->entries_for(site).size());
  }
}

TEST_F(DictionaryIoTest, OpAmpFaultSitesRoundTrip) {
  circuits::NfBiquadDesign design;
  design.ideal_opamps = false;
  const auto cut = circuits::make_nf_biquad(design);
  faults::DeviationSpec spec;
  spec.step_fraction = 0.4;
  const auto dict = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_opamp_params(cut, spec),
      std::vector<double>{1000.0, 5000.0});
  const auto loaded = load_dictionary(serialized(dict));
  EXPECT_EQ(loaded.site_labels(), dict.site_labels());
  EXPECT_EQ(loaded.entries().front().fault.site.target,
            faults::FaultSite::Target::kOpAmpParam);
}

TEST_F(DictionaryIoTest, CsvRoundTripIsBitExact) {
  // The header promises "lossless": every double must survive the text
  // round trip exactly, which makes save -> load -> save byte-identical.
  const std::string first = serialized(*dict_);
  const auto loaded = load_dictionary(first);
  expect_bit_identical(*dict_, loaded);
  EXPECT_EQ(serialized(loaded), first);
}

TEST_F(DictionaryIoTest, BinaryRoundTripIsBitExact) {
  std::ostringstream os;
  save_dictionary_binary(os, *dict_, "unit#test");
  const std::string bytes = os.str();

  ASSERT_TRUE(is_binary_dictionary(bytes));
  const BinaryDictionaryHeader header = read_binary_dictionary_header(bytes);
  EXPECT_EQ(header.version, kBinaryDictionaryVersion);
  EXPECT_EQ(header.key, "unit#test");
  EXPECT_EQ(header.frequency_count, dict_->frequencies().size());
  EXPECT_EQ(header.fault_count, dict_->fault_count());

  expect_bit_identical(*dict_, load_dictionary_binary(bytes));

  // Serialization is deterministic: same dictionary, same bytes.
  std::ostringstream again;
  save_dictionary_binary(again, load_dictionary_binary(bytes), "unit#test");
  EXPECT_EQ(again.str(), bytes);
}

TEST_F(DictionaryIoTest, BinaryOpAmpFaultSitesRoundTrip) {
  circuits::NfBiquadDesign design;
  design.ideal_opamps = false;
  const auto cut = circuits::make_nf_biquad(design);
  faults::DeviationSpec spec;
  spec.step_fraction = 0.4;
  const auto dict = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_opamp_params(cut, spec),
      std::vector<double>{1000.0, 5000.0});
  std::ostringstream os;
  save_dictionary_binary(os, dict);
  expect_bit_identical(dict, load_dictionary_binary(os.str()));
}

TEST_F(DictionaryIoTest, BinaryCorruptionRejected) {
  std::ostringstream os;
  save_dictionary_binary(os, *dict_);
  const std::string bytes = os.str();

  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[1] = 'Z';
  EXPECT_THROW((void)load_dictionary_binary(bad_magic), ParseError);
  EXPECT_FALSE(is_binary_dictionary(bad_magic));

  // Unsupported version.
  std::string bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_THROW((void)load_dictionary_binary(bad_version), ParseError);

  // A corrupted header count must fail the header checksum (a clean
  // ParseError, never an attempted giant allocation).  The n_freqs field
  // sits after magic(4) + version(4) + key length(4) + key bytes.
  std::string bad_count = bytes;  // empty key: n_freqs u64 sits at [12, 20)
  bad_count[18] = static_cast<char>(0x7f);
  EXPECT_THROW((void)load_dictionary_binary(bad_count), ParseError);
  EXPECT_THROW((void)read_binary_dictionary_header(bad_count), ParseError);

  // A single flipped payload bit fails a block checksum.
  for (std::size_t at : {bytes.size() / 4, bytes.size() / 2,
                         bytes.size() - 9}) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x01);
    EXPECT_THROW((void)load_dictionary_binary(flipped), ParseError);
  }

  // Truncation anywhere is caught before any block is trusted.
  for (std::size_t keep : {std::size_t{3}, std::size_t{16},
                           bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW((void)load_dictionary_binary(bytes.substr(0, keep)),
                 ParseError);
  }
}

TEST_F(DictionaryIoTest, VersionNegotiationRejectsTheFuturePolitely) {
  std::ostringstream os;
  save_dictionary_binary(os, *dict_);
  const std::string bytes = os.str();

  // The version word sits right after the 4-byte magic.  A reader must
  // refuse an artifact from its future with an actionable message, not a
  // checksum mumble: negotiation runs before any checksum.
  auto with_version = [&](std::uint32_t version) {
    std::string copy = bytes;
    for (int i = 0; i < 4; ++i) {
      copy[4 + i] = static_cast<char>((version >> (8 * i)) & 0xff);
    }
    return copy;
  };
  try {
    (void)load_dictionary_binary(with_version(kBinaryDictionaryVersion + 1));
    FAIL() << "future major version was accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("not supported"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("upgrade"), std::string::npos);
  }
  EXPECT_THROW((void)load_dictionary_binary(with_version(0)), ParseError);

  // v2 carries a feature-flag word after the version; unknown bits mean
  // "this file needs a capability you don't have" and must be refused.
  std::string unknown_flag = bytes;
  unknown_flag[8] = static_cast<char>(unknown_flag[8] | 0x01);
  try {
    (void)load_dictionary_binary(unknown_flag);
    FAIL() << "unknown feature flag was accepted";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("feature flags"),
              std::string::npos);
  }
}

TEST_F(DictionaryIoTest, TruncationSweepNeverOverAllocatesOrAccepts) {
  std::ostringstream os;
  save_dictionary_binary(os, *dict_);
  const std::string bytes = os.str();

  // Every prefix of the file must be a clean ParseError — block sizes are
  // validated against the remaining bytes *before* any allocation, so a
  // truncated file can never make the loader reserve for data that is not
  // there.  Sweep every cut point in the header region, then stride
  // through the payload.
  for (std::size_t keep = 0; keep < bytes.size();
       keep += keep < 96 ? 1 : 41) {
    EXPECT_THROW((void)load_dictionary_binary(bytes.substr(0, keep)),
                 ParseError)
        << "prefix of " << keep << " bytes was accepted";
    EXPECT_THROW(
        (void)parse_binary_dictionary_layout(bytes.substr(0, keep)),
        ParseError)
        << "layout accepted a prefix of " << keep << " bytes";
  }
}

TEST_F(DictionaryIoTest, BitFlipSweepIsNeverSilentlyWrong) {
  std::ostringstream os;
  save_dictionary_binary(os, *dict_);
  const std::string bytes = os.str();

  // Flip one bit at offsets throughout the image.  Every flip must either
  // be rejected (checksum / validation) or — only for bytes outside the
  // checksummed blocks, i.e. alignment padding — load bit-identically.
  // What can never happen is a quietly different dictionary.
  for (std::size_t at = 0; at < bytes.size();
       at += at < 64 ? 3 : 29) {
    std::string flipped = bytes;
    flipped[at] = static_cast<char>(flipped[at] ^ 0x10);
    try {
      const auto loaded = load_dictionary_binary(flipped);
      expect_bit_identical(*dict_, loaded);
    } catch (const ParseError&) {
      // rejected: fine
    }
  }
}

TEST_F(DictionaryIoTest, FormatNamesParse) {
  EXPECT_EQ(parse_dictionary_format("csv"), DictionaryFormat::kCsv);
  EXPECT_EQ(parse_dictionary_format("binary"), DictionaryFormat::kBinary);
  EXPECT_EQ(parse_dictionary_format("AUTO"), DictionaryFormat::kAuto);
  EXPECT_THROW((void)parse_dictionary_format("xml"), ParseError);
}

TEST_F(DictionaryIoTest, AutoDetectLoadsBothFormatsThroughOneEntryPoint) {
  const std::string csv_path = ::testing::TempDir() + "/ftdiag_auto.csv";
  const std::string fdx_path = ::testing::TempDir() + "/ftdiag_auto.fdx";
  // kAuto saving: extension decides.
  save_dictionary_file(csv_path, *dict_);
  save_dictionary_file(fdx_path, *dict_);
  EXPECT_FALSE(is_binary_dictionary(read_file_bytes(csv_path)));
  EXPECT_TRUE(is_binary_dictionary(read_file_bytes(fdx_path)));
  // kAuto loading: magic bytes decide, regardless of the name.
  expect_bit_identical(*dict_, load_dictionary_file(csv_path));
  expect_bit_identical(*dict_, load_dictionary_file(fdx_path));
  // An explicit format overrides sniffing and fails loudly on a mismatch.
  EXPECT_THROW((void)load_dictionary_file(csv_path, DictionaryFormat::kBinary),
               ParseError);
  std::remove(csv_path.c_str());
  std::remove(fdx_path.c_str());
}

TEST_F(DictionaryIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ftdiag_dict.csv";
  save_dictionary_file(path, *dict_);
  const auto loaded = load_dictionary_file(path);
  EXPECT_EQ(loaded.fault_count(), dict_->fault_count());
  std::remove(path.c_str());
}

TEST_F(DictionaryIoTest, MalformedInputsRejected) {
  EXPECT_THROW(load_dictionary(""), ParseError);
  EXPECT_THROW(load_dictionary("site,target\nx,value\n"), ParseError);
  // No golden series.
  EXPECT_THROW(
      load_dictionary("site,target,param,deviation,freq_hz,re,im\n"
                      "R1,value,,0.1,100,1,0\n"),
      ParseError);
  // Unknown target.
  EXPECT_THROW(
      load_dictionary("site,target,param,deviation,freq_hz,re,im\n"
                      ",,,0,100,1,0\n"
                      "R1,bogus,,0.1,100,1,0\n"),
      ParseError);
  // Unknown op-amp parameter.
  EXPECT_THROW(
      load_dictionary("site,target,param,deviation,freq_hz,re,im\n"
                      ",,,0,100,1,0\n"
                      "OA1,opamp,zeta,0.1,100,1,0\n"),
      ParseError);
}

TEST_F(DictionaryIoTest, GridMismatchRejectedByFromParts) {
  // An entry on a different grid than the golden must be refused.
  EXPECT_THROW(
      load_dictionary("site,target,param,deviation,freq_hz,re,im\n"
                      ",,,0,100,1,0\n"
                      ",,,0,1000,0.9,0\n"
                      "R1,value,,0.1,100,1,0\n"),
      ConfigError);
}

TEST(DictionaryFromParts, EmptyEntriesRejected) {
  EXPECT_THROW(faults::FaultDictionary::from_parts(
                   mna::AcResponse({1.0}, {mna::Complex(1, 0)}), {}),
               ConfigError);
}

}  // namespace
}  // namespace ftdiag::io
