/// Unit tests of the persistent work-stealing pool behind
/// par::parallel_for: full index coverage for any lane count, lane-id
/// bounds, exception propagation, nested-call inlining, determinism of
/// slot writes, concurrent jobs from independent threads, and the
/// FTDIAG_THREADS resolution override.  The TSan CI job runs this suite
/// to vet the pool's synchronization.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"
#include "util/threads.hpp"

namespace ftdiag {
namespace {

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(util::resolve_threads(3), 3u);
  EXPECT_EQ(util::resolve_threads(1), 1u);
}

TEST(ResolveThreads, AutoFallsBackToHardware) {
  unsetenv("FTDIAG_THREADS");
  EXPECT_EQ(util::resolve_threads(0), util::hardware_threads());
  EXPECT_GE(util::hardware_threads(), 1u);
}

TEST(ResolveThreads, EnvironmentOverridesAuto) {
  setenv("FTDIAG_THREADS", "5", 1);
  EXPECT_EQ(util::resolve_threads(0), 5u);
  // An explicit request still wins over the environment.
  EXPECT_EQ(util::resolve_threads(2), 2u);
  unsetenv("FTDIAG_THREADS");
}

TEST(ResolveThreads, InvalidEnvironmentValuesAreIgnored) {
  for (const char* bad : {"0", "-4", "lots", "3x", "", "99999999"}) {
    setenv("FTDIAG_THREADS", bad, 1);
    EXPECT_EQ(util::resolve_threads(0), util::hardware_threads())
        << "FTDIAG_THREADS=" << bad;
  }
  unsetenv("FTDIAG_THREADS");
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  par::ThreadPool pool(3);
  for (const std::size_t count : {0u, 1u, 2u, 7u, 64u, 1000u}) {
    for (const std::size_t lanes : {1u, 2u, 4u, 16u}) {
      std::vector<std::atomic<int>> hits(count);
      pool.for_each(count, lanes,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "count=" << count
                                     << " lanes=" << lanes << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, SlotWritesAreIdenticalForAnyLaneCount) {
  par::ThreadPool pool(7);
  const std::size_t count = 513;
  std::vector<std::size_t> reference(count);
  for (std::size_t i = 0; i < count; ++i) reference[i] = i * i;
  for (const std::size_t lanes : {1u, 2u, 8u}) {
    std::vector<std::size_t> out(count, 0);
    pool.for_each(count, lanes, [&](std::size_t i) { out[i] = i * i; });
    EXPECT_EQ(out, reference) << "lanes=" << lanes;
  }
}

TEST(ThreadPool, LaneIdsStayWithinTheRequestedWidth) {
  par::ThreadPool pool(8);
  const std::size_t lanes = 3;
  // Per-lane counters written without atomics: lane ids out of range
  // would fault, and lane sharing across concurrent threads would be a
  // data race TSan flags.
  std::vector<std::size_t> per_lane(lanes, 0);
  std::atomic<std::size_t> total{0};
  pool.for_each_lane(10000, lanes, [&](std::size_t lane, std::size_t) {
    ASSERT_LT(lane, lanes);
    ++per_lane[lane];
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 10000u);
  EXPECT_EQ(std::accumulate(per_lane.begin(), per_lane.end(),
                            std::size_t{0}),
            10000u);
}

TEST(ThreadPool, FirstExceptionPropagatesToTheCaller) {
  par::ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  try {
    pool.for_each(100, 4, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 17) throw std::runtime_error("item 17 failed");
    });
    FAIL() << "expected the item exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "item 17 failed");
  }
  // Independent items keep running: only the throwing item's own block is
  // cut short, every other block still drains.
  EXPECT_GE(ran.load(), 90u);
  EXPECT_LE(ran.load(), 100u);
}

TEST(ThreadPool, NestedCallsRunInlineOnTheOuterLane) {
  par::ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.for_each(8, 4, [&](std::size_t) {
    EXPECT_TRUE(par::ThreadPool::in_parallel_region());
    const std::thread::id outer = std::this_thread::get_id();
    // A nested loop must not fan out again: every inner item runs on the
    // thread that issued it.
    pool.for_each(16, 4, [&](std::size_t) {
      if (std::this_thread::get_id() != outer) mismatches.fetch_add(1);
    });
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_FALSE(par::ThreadPool::in_parallel_region());
}

TEST(ThreadPool, ConcurrentJobsFromIndependentThreadsAllComplete) {
  par::ThreadPool pool(3);
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kItems = 2048;
  std::vector<std::uint64_t> sums(kClients, 0);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::uint64_t> slots(kItems);
      pool.for_each(kItems, 4, [&](std::size_t i) {
        slots[i] = (c + 1) * i;
      });
      std::uint64_t sum = 0;
      for (std::uint64_t v : slots) sum += v;
      sums[c] = sum;
    });
  }
  for (auto& client : clients) client.join();
  const std::uint64_t base = kItems * (kItems - 1) / 2;
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(sums[c], (c + 1) * base) << "client " << c;
  }
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  par::ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const std::thread::id self = std::this_thread::get_id();
  std::size_t ran = 0;
  pool.for_each_lane(32, 8, [&](std::size_t lane, std::size_t) {
    EXPECT_EQ(lane, 0u);
    EXPECT_EQ(std::this_thread::get_id(), self);
    ++ran;
  });
  EXPECT_EQ(ran, 32u);
}

TEST(ParallelFor, GlobalPoolPreservesSlotSemantics) {
  // The drop-in used across the code base: slot writes, any thread count.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    std::vector<double> out(257, 0.0);
    par::parallel_for(out.size(), threads,
                      [&](std::size_t i) { out[i] = 0.5 * double(i); });
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], 0.5 * double(i));
    }
  }
}

TEST(ParallelFor, LaneVariantIndexesPerLaneWorkspaces) {
  const std::size_t threads = 4;
  std::vector<std::vector<std::size_t>> scratch(threads);
  std::vector<std::size_t> out(300, 0);
  par::parallel_for_lanes(out.size(), threads,
                          [&](std::size_t lane, std::size_t i) {
                            auto& ws = scratch[lane];  // un-synchronized
                            ws.assign(1, i);
                            out[i] = ws[0] + 1;
                          });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
}

}  // namespace
}  // namespace ftdiag
