#include "io/run_report.hpp"

#include <gtest/gtest.h>

#include "circuits/nf_biquad.hpp"

namespace ftdiag::io {
namespace {

class RunReportTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    flow_ = new core::AtpgFlow(circuits::make_paper_cut());
    result_ = new core::AtpgResult(flow_->run());
  }
  static void TearDownTestSuite() {
    delete result_;
    delete flow_;
    result_ = nullptr;
    flow_ = nullptr;
  }
  static core::AtpgFlow* flow_;
  static core::AtpgResult* result_;
};

core::AtpgFlow* RunReportTest::flow_ = nullptr;
core::AtpgResult* RunReportTest::result_ = nullptr;

TEST_F(RunReportTest, ContainsAllSections) {
  RunReportOptions options;
  options.evaluation.trials = 40;
  const std::string report = render_run_report(*flow_, *result_, options);
  EXPECT_NE(report.find("# Fault-trajectory test program: nf_biquad"),
            std::string::npos);
  EXPECT_NE(report.find("## Configuration"), std::string::npos);
  EXPECT_NE(report.find("## Fault dictionary"), std::string::npos);
  EXPECT_NE(report.find("## Selected test vector"), std::string::npos);
  EXPECT_NE(report.find("## Diagnosis evaluation"), std::string::npos);
}

TEST_F(RunReportTest, ListsTestablesAndGroups) {
  RunReportOptions options;
  options.include_evaluation = false;
  const std::string report = render_run_report(*flow_, *result_, options);
  EXPECT_NE(report.find("Ra, Rb, R1, R2, R3, C1, C2"), std::string::npos);
  EXPECT_NE(report.find("ambiguity groups"), std::string::npos);
}

TEST_F(RunReportTest, EvaluationCanBeDisabled) {
  RunReportOptions options;
  options.include_evaluation = false;
  const std::string report = render_run_report(*flow_, *result_, options);
  EXPECT_EQ(report.find("## Diagnosis evaluation"), std::string::npos);
}

TEST_F(RunReportTest, TrajectoriesOptIn) {
  RunReportOptions options;
  options.include_evaluation = false;
  EXPECT_EQ(render_run_report(*flow_, *result_, options).find("## Trajectories"),
            std::string::npos);
  options.include_trajectories = true;
  const std::string verbose = render_run_report(*flow_, *result_, options);
  EXPECT_NE(verbose.find("## Trajectories"), std::string::npos);
  EXPECT_NE(verbose.find("| R3 | +40% |"), std::string::npos);
}

TEST_F(RunReportTest, ReportsTheChosenVector) {
  RunReportOptions options;
  options.include_evaluation = false;
  const std::string report = render_run_report(*flow_, *result_, options);
  EXPECT_NE(report.find(result_->best.vector.label()), std::string::npos);
}

TEST_F(RunReportTest, ConvergenceTableCoversAllGenerations) {
  RunReportOptions options;
  options.include_evaluation = false;
  const std::string report = render_run_report(*flow_, *result_, options);
  // 16 history rows (gen 0..15) -> the last generation number appears.
  EXPECT_NE(report.find("| 15 |"), std::string::npos);
}

}  // namespace
}  // namespace ftdiag::io
