#include "core/ambiguity.hpp"

#include <gtest/gtest.h>

#include "circuits/nf_biquad.hpp"
#include "circuits/tow_thomas.hpp"

namespace ftdiag::core {
namespace {

faults::FaultDictionary build_dict(const circuits::CircuitUnderTest& cut) {
  return faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_testable(cut));
}

TEST(AmbiguityGroup, ContainsAndLabel) {
  AmbiguityGroup g;
  g.sites = {"R4", "R6"};
  EXPECT_TRUE(g.contains("R4"));
  EXPECT_FALSE(g.contains("R1"));
  EXPECT_EQ(g.label(), "R4=R6");
}

TEST(Ambiguity, PaperCutHasAllSingletons) {
  const auto cut = circuits::make_paper_cut();
  const auto groups = find_ambiguity_groups(build_dict(cut));
  EXPECT_EQ(groups.size(), 7u);
  for (const auto& g : groups) EXPECT_EQ(g.sites.size(), 1u);
}

TEST(Ambiguity, TowThomasHasTheKnownStructuralGroups) {
  // At the LP output: R4 and R6 enter only via k/R6; R3 and C2 only via
  // the product R3*C2 — both pairs must be detected.
  const auto cut = circuits::make_tow_thomas();
  const auto groups = find_ambiguity_groups(build_dict(cut));
  EXPECT_EQ(groups.size(), 5u);  // 7 testables -> 5 classes
  EXPECT_TRUE(same_group(groups, "R4", "R6"));
  EXPECT_TRUE(same_group(groups, "R3", "C2"));
  EXPECT_FALSE(same_group(groups, "R1", "R2"));
  EXPECT_FALSE(same_group(groups, "C1", "C2"));
}

TEST(Ambiguity, GroupOfFindsOwner) {
  const auto cut = circuits::make_tow_thomas();
  const auto groups = find_ambiguity_groups(build_dict(cut));
  const std::size_t g_r4 = group_of(groups, "R4");
  ASSERT_LT(g_r4, groups.size());
  EXPECT_EQ(g_r4, group_of(groups, "R6"));
  EXPECT_EQ(group_of(groups, "R99"), groups.size());
}

TEST(Ambiguity, SameGroupIsFalseForUnknownSites) {
  const auto cut = circuits::make_paper_cut();
  const auto groups = find_ambiguity_groups(build_dict(cut));
  EXPECT_FALSE(same_group(groups, "R99", "R1"));
  EXPECT_FALSE(same_group(groups, "R1", "R98"));
}

TEST(Ambiguity, GroupsPartitionAllSites) {
  const auto cut = circuits::make_tow_thomas();
  const auto dict = build_dict(cut);
  const auto groups = find_ambiguity_groups(dict);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.sites.size();
  EXPECT_EQ(total, dict.site_labels().size());
  // Every site appears in exactly one group.
  for (const auto& site : dict.site_labels()) {
    EXPECT_LT(group_of(groups, site), groups.size()) << site;
  }
}

TEST(Ambiguity, LooseToleranceMergesEverything) {
  const auto cut = circuits::make_paper_cut();
  AmbiguityOptions options;
  options.relative_tolerance = 1e9;  // absurd: everything looks the same
  const auto groups = find_ambiguity_groups(build_dict(cut), options);
  EXPECT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.front().sites.size(), 7u);
}

TEST(Ambiguity, CustomProbeFrequenciesRespected) {
  const auto cut = circuits::make_tow_thomas();
  AmbiguityOptions options;
  options.probe_frequencies_hz = {100.0, 1000.0, 10000.0};
  const auto groups = find_ambiguity_groups(build_dict(cut), options);
  EXPECT_TRUE(same_group(groups, "R4", "R6"));
}

}  // namespace
}  // namespace ftdiag::core
