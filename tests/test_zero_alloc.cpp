/// Allocation-count guard of the sweep hot path: global operator new is
/// replaced with a counting wrapper, the distilled per-frequency loop
/// (split G+sC assembly -> in-place factor -> golden solve -> blocked
/// multi-RHS solve -> split re/im Sherman–Morrison sweep) must perform
/// ZERO heap allocations once its buffers are warm, and the full engine's
/// allocation count must be independent of the frequency-grid size (the
/// per-frequency inner loop allocates nothing; only per-fault result
/// storage scales).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "circuits/nf_biquad.hpp"
#include "circuits/registry.hpp"
#include "faults/fault_universe.hpp"
#include "faults/simulation_engine.hpp"
#include "linalg/lu.hpp"
#include "linalg/rank1.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/frequency_grid.hpp"
#include "mna/stamp_update.hpp"
#include "mna/system.hpp"

namespace {
std::atomic<std::size_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ftdiag {
namespace {

using linalg::Complex;

TEST(ZeroAllocation, SweepInnerLoopIsAllocationFreeAfterWarmup) {
  const auto cut = circuits::make_by_name("state_variable");
  const mna::AcAnalysis analysis(cut.circuit);
  const mna::SweepAssembler& assembler = analysis.sweep_assembler();
  const mna::MnaSystem& system = analysis.system();
  const std::size_t n = system.unknown_count();
  const std::size_t out = system.node_unknown(cut.output_node);
  ASSERT_NE(out, mna::kNoUnknown);

  // Structural u/v pairs of the first few rank-1-capable sites, packed as
  // one multi-RHS block exactly as the engine solves them.
  std::vector<mna::Rank1StampUpdate> updates;
  for (const auto& component : system.circuit().components()) {
    if (auto update = mna::rank1_stamp_update(system, component.name)) {
      updates.push_back(std::move(*update));
      if (updates.size() == 4) break;
    }
  }
  ASSERT_FALSE(updates.empty());
  const std::size_t site_count = updates.size();
  linalg::Matrix<Complex> u_columns(n, site_count);
  for (std::size_t si = 0; si < site_count; ++si) {
    for (const auto& [index, value] : updates[si].u.entries) {
      u_columns(index, si) += value;
    }
  }

  const std::vector<double> freqs =
      mna::FrequencyGrid::log_sweep(10.0, 100e3, 240).frequencies();
  const std::size_t f_count = freqs.size();

  // The workspace arena: everything the steady-state loop touches.
  linalg::Matrix<Complex> a;
  linalg::LuFactorization<Complex> lu;
  std::vector<Complex> x0(n);
  linalg::Matrix<Complex> w;
  std::vector<double> x0_re(f_count), x0_im(f_count), w_re(f_count),
      w_im(f_count), vx0_re(f_count), vx0_im(f_count), vw_re(f_count),
      vw_im(f_count), scale_re(f_count), scale_im(f_count),
      out_re(f_count), out_im(f_count);
  std::vector<unsigned char> refused(f_count);

  const auto sweep_point = [&](std::size_t fi) {
    const Complex s = linalg::s_of_hz(freqs[fi]);
    assembler.assemble(s, a);
    lu.factor_in_place(a);
    lu.solve_into(assembler.rhs(), x0);
    lu.solve_into(u_columns, w);
    const Complex v_dot_x0 = linalg::sparse_dot(
        updates[0].v, std::span<const Complex>(x0));
    Complex v_dot_w{};
    for (const auto& [index, value] : updates[0].v.entries) {
      v_dot_w += value * w(index, 0);
    }
    x0_re[fi] = x0[out].real();
    x0_im[fi] = x0[out].imag();
    w_re[fi] = w(out, 0).real();
    w_im[fi] = w(out, 0).imag();
    vx0_re[fi] = v_dot_x0.real();
    vx0_im[fi] = v_dot_x0.imag();
    vw_re[fi] = v_dot_w.real();
    vw_im[fi] = v_dot_w.imag();
    const Complex scale = updates[0].coefficient(s, 1.4);
    scale_re[fi] = scale.real();
    scale_im[fi] = scale.imag();
  };

  // Warm-up: the first pass sizes every buffer.
  sweep_point(0);
  sweep_point(1);

  const std::size_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (std::size_t fi = 0; fi < f_count; ++fi) sweep_point(fi);
  const std::size_t refusals = linalg::sherman_morrison_sweep(
      f_count, scale_re.data(), scale_im.data(), vx0_re.data(),
      vx0_im.data(), vw_re.data(), vw_im.data(), x0_re.data(),
      x0_im.data(), w_re.data(), w_im.data(), linalg::kRank1MaxGrowth,
      out_re.data(), out_im.data(), refused.data());
  const std::size_t after =
      g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "the steady-state sweep inner loop must not touch the heap";
  EXPECT_EQ(refusals, 0u);
  // The sweep must have produced finite output (guards against the loop
  // being optimized into nothing).
  EXPECT_TRUE(std::isfinite(out_re[f_count / 2]));
}

/// The whole engine's allocation count must not scale with the frequency
/// grid: per-fault result storage is one vector each regardless of
/// length, and the per-frequency loop is allocation-free.
std::size_t engine_allocation_count(std::size_t grid_points) {
  const auto cut = circuits::make_paper_cut();
  const auto faults_list =
      faults::FaultUniverse::over_testable(cut).enumerate();
  const std::vector<double> freqs =
      mna::FrequencyGrid::log_sweep(10.0, 100e3, grid_points).frequencies();
  faults::SimOptions options;
  options.threads = 1;
  const faults::SimulationEngine engine(cut, options);
  const std::size_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  const auto batch = engine.simulate_all(faults_list, freqs);
  const std::size_t after =
      g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(batch.responses.size(), faults_list.size());
  EXPECT_EQ(batch.stats.fallback_faults, 0u);
  return after - before;
}

TEST(ZeroAllocation, EngineAllocationCountIsFrequencyCountIndependent) {
  const std::size_t at_40 = engine_allocation_count(40);
  const std::size_t at_400 = engine_allocation_count(400);
  // A single allocation per frequency would add >= 360 here; allow a
  // small constant of slack for block bookkeeping.
  EXPECT_LE(at_400, at_40 + 64)
      << "engine allocations grew with the frequency grid";
}

}  // namespace
}  // namespace ftdiag
