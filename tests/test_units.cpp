#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ftdiag::units {
namespace {

TEST(Parse, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse("-1.5"), -1.5);
  EXPECT_DOUBLE_EQ(parse("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(parse("2.5E3"), 2500.0);
}

struct SuffixCase {
  const char* text;
  double expected;
};

class SuffixTest : public ::testing::TestWithParam<SuffixCase> {};

TEST_P(SuffixTest, ParsesSpiceSuffix) {
  EXPECT_DOUBLE_EQ(parse(GetParam().text), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllSuffixes, SuffixTest,
    ::testing::Values(SuffixCase{"1k", 1e3}, SuffixCase{"2.2u", 2.2e-6},
                      SuffixCase{"1meg", 1e6}, SuffixCase{"1MEG", 1e6},
                      SuffixCase{"4.7n", 4.7e-9}, SuffixCase{"10p", 10e-12},
                      SuffixCase{"3m", 3e-3}, SuffixCase{"1g", 1e9},
                      SuffixCase{"2t", 2e12}, SuffixCase{"5f", 5e-15},
                      SuffixCase{"1K", 1e3}, SuffixCase{"-4.7k", -4.7e3}));

TEST(Parse, UnitNamesAfterSuffixIgnored) {
  EXPECT_DOUBLE_EQ(parse("10kOhm"), 10e3);
  EXPECT_DOUBLE_EQ(parse("100nF"), 100e-9);
  EXPECT_DOUBLE_EQ(parse("5V"), 5.0);
  EXPECT_DOUBLE_EQ(parse("3Hz"), 3.0);
}

TEST(Parse, MilSuffix) { EXPECT_DOUBLE_EQ(parse("2mil"), 2 * 25.4e-6); }

TEST(Parse, WhitespaceTolerated) { EXPECT_DOUBLE_EQ(parse("  1.5k "), 1500.0); }

TEST(Parse, RejectsGarbage) {
  EXPECT_THROW((void)parse(""), ParseError);
  EXPECT_THROW((void)parse("abc"), ParseError);
  EXPECT_THROW((void)parse("1.2.3!"), ParseError);
  EXPECT_THROW((void)parse("nan"), ParseError);
  EXPECT_THROW((void)parse("inf"), ParseError);
}

TEST(TryParse, NulloptInsteadOfThrow) {
  EXPECT_FALSE(try_parse("xyz").has_value());
  ASSERT_TRUE(try_parse("3.3k").has_value());
  EXPECT_DOUBLE_EQ(*try_parse("3.3k"), 3300.0);
}

TEST(FormatSi, RoundTripMagnitudes) {
  EXPECT_EQ(format_si(0.0), "0");
  EXPECT_EQ(format_si(1500.0), "1.5k");
  EXPECT_EQ(format_si(2.2e-6), "2.2u");
  EXPECT_EQ(format_si(1e6), "1meg");  // SPICE-compatible mega suffix
  EXPECT_EQ(format_si(4.7e-9), "4.7n");
}

TEST(FormatSi, NegativeValues) { EXPECT_EQ(format_si(-1500.0), "-1.5k"); }

TEST(FormatHz, AppendsUnit) {
  EXPECT_EQ(format_hz(1000.0), "1kHz");
  EXPECT_EQ(format_hz(15.9), "15.9Hz");
}

TEST(ParseFormat, RoundTrip) {
  for (double v : {1.0, 47e3, 2.2e-6, 100e-9, 3.3e6}) {
    EXPECT_NEAR(parse(format_si(v)), v, 1e-3 * v);
  }
}

}  // namespace
}  // namespace ftdiag::units
