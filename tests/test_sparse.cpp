#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "linalg/lu.hpp"
#include "linalg/sparse_factorization.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag::linalg {
namespace {

using C = std::complex<double>;

TEST(Coo, DuplicatesSumOnDensify) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  coo.add(1, 1, -1.0);
  const auto dense = coo.to_dense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(dense(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(dense(0, 1), 0.0);
}

TEST(Coo, ExactZerosDropped) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 0.0);
  EXPECT_EQ(coo.entry_count(), 0u);
}

TEST(Csr, BuildsSortedRows) {
  CooMatrix<double> coo(2, 3);
  coo.add(0, 2, 3.0);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 2.0);
  const CsrMatrix<double> csr(coo);
  EXPECT_EQ(csr.nnz(), 3u);
  const auto row0 = csr.row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0].first, 0u);
  EXPECT_EQ(row0[1].first, 2u);
}

TEST(Csr, DuplicatesSummedAndZerosCancelled) {
  CooMatrix<double> coo(1, 2);
  coo.add(0, 0, 2.0);
  coo.add(0, 0, -2.0);
  coo.add(0, 1, 5.0);
  const CsrMatrix<double> csr(coo);
  EXPECT_EQ(csr.nnz(), 1u);  // the cancelled entry vanished
}

TEST(Csr, MultiplyMatchesDense) {
  Rng rng(7);
  CooMatrix<double> coo(5, 5);
  for (int k = 0; k < 12; ++k) {
    coo.add(static_cast<std::size_t>(rng.uniform_int(0, 4)),
            static_cast<std::size_t>(rng.uniform_int(0, 4)),
            rng.uniform(-1.0, 1.0));
  }
  const CsrMatrix<double> csr(coo);
  const auto dense = coo.to_dense();
  std::vector<double> x(5);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto y_sparse = csr.multiply(x);
  const auto y_dense = dense * x;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-14);
  }
}

TEST(SparseLu, SolvesSmallSystem) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 2.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 3.0);
  const SparseLu<double> lu(coo);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLu, RequiresSquare) {
  CooMatrix<double> coo(2, 3);
  coo.add(0, 0, 1.0);
  EXPECT_THROW((void)SparseLu<double>(coo), NumericError);
}

TEST(SparseLu, SingularThrows) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);  // column 1 empty -> singular
  EXPECT_THROW((void)SparseLu<double>(coo), NumericError);
}

TEST(SparseLu, ZeroMatrixThrows) {
  CooMatrix<double> coo(3, 3);
  EXPECT_THROW((void)SparseLu<double>(coo), NumericError);
}

TEST(SparseLu, PermutedIdentity) {
  CooMatrix<double> coo(3, 3);
  coo.add(0, 2, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(2, 1, 1.0);
  const SparseLu<double> lu(coo);
  const auto x = lu.solve({10.0, 20.0, 30.0});
  EXPECT_NEAR(x[2], 10.0, 1e-12);
  EXPECT_NEAR(x[0], 20.0, 1e-12);
  EXPECT_NEAR(x[1], 30.0, 1e-12);
}

/// Property sweep: random sparse diagonally-dominant systems; sparse LU
/// must match the dense solution.
class SparseLuAgreementTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SparseLuAgreementTest, MatchesDenseSolver) {
  const std::size_t n = GetParam();
  Rng rng(500 + n);
  CooMatrix<double> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0 + rng.uniform());
    // A few off-diagonal entries per row.
    for (int k = 0; k < 3; ++k) {
      const std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (j != i) coo.add(i, j, rng.uniform(-1.0, 1.0));
    }
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  const auto x_sparse = SparseLu<double>(coo).solve(b);
  const auto x_dense = solve_dense(coo.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_sparse[i], x_dense[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuAgreementTest,
                         ::testing::Values(2, 5, 10, 25, 50, 100, 200));

TEST(SparseLu, ComplexAgreesWithDense) {
  Rng rng(42);
  const std::size_t n = 20;
  CooMatrix<C> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, C(3.0 + rng.uniform(), rng.uniform()));
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (j != i) coo.add(i, j, C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
  }
  std::vector<C> b(n);
  for (auto& v : b) v = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  const auto xs = SparseLu<C>(coo).solve(b);
  const auto xd = solve_dense(coo.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(xs[i] - xd[i]), 0.0, 1e-9);
  }
}

TEST(SparseLu, FactorNnzReported) {
  CooMatrix<double> coo(3, 3);
  for (std::size_t i = 0; i < 3; ++i) coo.add(i, i, 1.0);
  const SparseLu<double> lu(coo);
  EXPECT_EQ(lu.factor_nnz(), 3u);  // diagonal only, no fill-in
  EXPECT_EQ(lu.size(), 3u);
}

TEST(SparseLu, InvalidPivotThresholdRejected) {
  CooMatrix<double> coo(1, 1);
  coo.add(0, 0, 1.0);
  EXPECT_DEATH(SparseLu<double>(coo, 0.0), "pivot threshold");
}

/// Regression: elimination used to drop entries that cancelled to exactly
/// 0.0, so two matrices with the SAME sparsity pattern produced factors
/// with DIFFERENT structure — fatal for any pattern-reuse scheme.  In the
/// first matrix the (1,1) entry cancels exactly during step 0
/// (2 - 2*1 = 0); the second has the same pattern without cancellation.
TEST(SparseLu, ExactCancellationKeepsFactorStructure) {
  auto build = [](double a11) {
    CooMatrix<double> coo(3, 3);
    coo.add(0, 0, 2.0);
    coo.add(0, 1, 1.0);
    coo.add(1, 0, 4.0);
    coo.add(1, 1, a11);
    coo.add(1, 2, 1.0);
    coo.add(2, 1, 1.0);
    coo.add(2, 2, 1.0);
    return coo;
  };
  const CooMatrix<double> cancelling = build(2.0);   // det = -2, nonsingular
  const CooMatrix<double> plain = build(5.0);        // det = 4

  const SparseLu<double> lu_cancel(cancelling);
  const SparseLu<double> lu_plain(plain);
  EXPECT_EQ(lu_cancel.factor_nnz(), lu_plain.factor_nnz())
      << "factor structure depended on values, not just the pattern";

  // Both still solve correctly against the dense reference.
  const std::vector<double> b{1.0, 2.0, 3.0};
  auto check = [&](const CooMatrix<double>& coo, const SparseLu<double>& lu) {
    const auto xs = lu.solve(b);
    const auto xd = solve_dense(coo.to_dense(), b);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-12);
  };
  check(cancelling, lu_cancel);
  check(plain, lu_plain);
}

/// Entries of the INPUT that sum to exactly zero are structural too: the
/// row build must keep them for the same reason the elimination does.
TEST(SparseLu, InputEntriesCancellingToZeroStayStructural) {
  auto build = [](double extra) {
    CooMatrix<double> coo(2, 2);
    coo.add(0, 0, 1.0);
    coo.add(0, 1, 1.0);
    coo.add(0, 1, extra);  // duplicate stamp; -1 cancels the entry exactly
    coo.add(1, 0, 1.0);
    coo.add(1, 1, 3.0);
    return coo;
  };
  const SparseLu<double> cancelled(build(-1.0));
  const SparseLu<double> kept(build(1.0));
  EXPECT_EQ(cancelled.factor_nnz(), kept.factor_nnz());
  const auto x = cancelled.solve({2.0, 5.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);  // [[1,0],[1,3]] x = [2,5]
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

// ---------------------------------------------------- SparseFactorization

TEST(SparseFactorization, SolvesAndReportsShape) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 2.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 3.0);
  const SparseFactorization<double> f(coo);
  EXPECT_TRUE(f.analyzed());
  EXPECT_EQ(f.size(), 2u);
  const auto x = f.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseFactorization, RequiresSquareAndNonZero) {
  CooMatrix<double> rect(2, 3);
  rect.add(0, 0, 1.0);
  EXPECT_THROW((void)SparseFactorization<double>(rect), NumericError);
  CooMatrix<double> zero(3, 3);
  EXPECT_THROW((void)SparseFactorization<double>(zero), NumericError);
}

/// The core contract: analyze once, refill with OTHER same-pattern values,
/// and match the dense solution of the new values — including a matrix
/// that produces exact cancellation during elimination.
TEST(SparseFactorization, RefactorMatchesDenseForNewValues) {
  auto build = [](double a11) {
    CooMatrix<double> coo(3, 3);
    coo.add(0, 0, 2.0);
    coo.add(0, 1, 1.0);
    coo.add(1, 0, 4.0);
    coo.add(1, 1, a11);
    coo.add(1, 2, 1.0);
    coo.add(2, 1, 1.0);
    coo.add(2, 2, 1.0);
    return coo;
  };
  SparseFactorization<double> f(build(5.0));
  const std::size_t nnz = f.factor_nnz();
  const std::vector<double> b{1.0, -2.0, 3.0};
  for (double a11 : {7.0, 2.0 /* exact cancellation */, -3.0}) {
    const auto coo = build(a11);
    f.refactor(coo);
    EXPECT_EQ(f.factor_nnz(), nnz) << "pattern must never change";
    const auto xs = f.solve(b);
    const auto xd = solve_dense(coo.to_dense(), b);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(xs[i], xd[i], 1e-12) << "a11=" << a11;
    }
  }
}

/// A structural SUBSET is a legal refactor input (the reactive part of
/// G + s*C vanishing at some frequency); a superset is not.
TEST(SparseFactorization, SubsetPatternRefactorsSupersetThrows) {
  CooMatrix<double> full(2, 2);
  full.add(0, 0, 2.0);
  full.add(0, 1, 1.0);
  full.add(1, 0, 1.0);
  full.add(1, 1, 3.0);
  SparseFactorization<double> f(full);

  CooMatrix<double> subset(2, 2);  // off-diagonals absent
  subset.add(0, 0, 4.0);
  subset.add(1, 1, 2.0);
  f.refactor(subset);
  const auto x = f.solve({8.0, 6.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);

  CooMatrix<double> superset(2, 2);
  superset.add(0, 0, 2.0);
  superset.add(1, 1, 3.0);
  superset.add(1, 0, 1.0);
  superset.add(0, 1, 1.0);
  f.refactor(superset);  // same pattern: fine
  CooMatrix<double> outside(2, 2);
  outside.add(0, 0, 2.0);
  outside.add(1, 1, 3.0);
  EXPECT_NO_THROW(f.refactor(outside));
  SparseFactorization<double> diag_only(outside);
  CooMatrix<double> off(2, 2);
  off.add(0, 0, 2.0);
  off.add(0, 1, 1.0);  // outside the diagonal-only pattern
  off.add(1, 1, 3.0);
  EXPECT_THROW(diag_only.refactor(off), NumericError);
}

/// When the frozen pivot order is numerically unusable for the new values
/// the refactor must refuse instead of producing garbage.
TEST(SparseFactorization, PivotBreakdownThrows) {
  CooMatrix<double> good(2, 2);
  good.add(0, 0, 1.0);
  good.add(0, 1, 1.0);
  good.add(1, 0, 1.0);
  good.add(1, 1, 2.0);
  SparseFactorization<double> f(good);
  CooMatrix<double> bad(2, 2);
  bad.add(0, 0, 1e-30);  // frozen pivot collapses
  bad.add(0, 1, 1.0);
  bad.add(1, 0, 1.0);
  bad.add(1, 1, 2.0);
  EXPECT_THROW(f.refactor(bad), NumericError);
}

/// Structural zero diagonals (voltage-source/branch rows in MNA) force row
/// exchanges; the frozen permutation must survive a refactor.
TEST(SparseFactorization, PivotingStressPermutedSystem) {
  auto build = [](double scale) {
    CooMatrix<double> coo(4, 4);
    // Rows 0/1 have zero diagonals, saddle-point style.
    coo.add(0, 2, 1.0 * scale);
    coo.add(0, 3, 2.0);
    coo.add(1, 2, 3.0);
    coo.add(1, 3, -1.0 * scale);
    coo.add(2, 0, 1.0);
    coo.add(2, 2, 0.5 * scale);
    coo.add(3, 1, 2.0 * scale);
    coo.add(3, 3, 0.25);
    return coo;
  };
  SparseFactorization<double> f(build(1.0));
  const std::vector<double> b{1.0, 2.0, 3.0, 4.0};
  for (double scale : {1.0, 5.0, -2.0}) {
    const auto coo = build(scale);
    f.refactor(coo);
    const auto xs = f.solve(b);
    const auto xd = solve_dense(coo.to_dense(), b);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR(xs[i], xd[i], 1e-10) << "scale=" << scale;
    }
  }
}

/// Randomized differential sweep: analyze at one draw of values, refactor
/// at another, always matching dense; copies share the symbolic phase but
/// never numeric state.
class SparseFactorizationAgreementTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SparseFactorizationAgreementTest, RefactorMatchesDenseSolver) {
  const std::size_t n = GetParam();
  Rng rng(900 + n);
  // One fixed pattern, two value draws over it.
  std::vector<std::pair<std::size_t, std::size_t>> pattern;
  for (std::size_t i = 0; i < n; ++i) {
    pattern.emplace_back(i, i);
    for (int k = 0; k < 3; ++k) {
      const std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (j != i) pattern.emplace_back(i, j);
    }
  }
  auto draw = [&]() {
    CooMatrix<double> coo(n, n);
    for (const auto& [i, j] : pattern) {
      coo.add(i, j, i == j ? 4.0 + rng.uniform() : rng.uniform(-1.0, 1.0));
    }
    return coo;
  };
  const auto first = draw();
  const auto second = draw();
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  SparseFactorization<double> f(first);
  {
    const auto xs = f.solve(b);
    const auto xd = solve_dense(first.to_dense(), b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
  }
  SparseFactorization<double> clone = f;  // shares the symbolic phase
  clone.refactor(second);
  {
    const auto xs = clone.solve(b);
    const auto xd = solve_dense(second.to_dense(), b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
  }
  // The original is untouched by the clone's refactor.
  const auto xs = f.solve(b);
  const auto xd = solve_dense(first.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseFactorizationAgreementTest,
                         ::testing::Values(2, 5, 10, 25, 50, 100, 200));

TEST(SparseFactorization, ComplexBlockedMultiRhsMatchesSingleSolves) {
  Rng rng(77);
  const std::size_t n = 60;
  CooMatrix<C> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, C(3.0 + rng.uniform(), rng.uniform()));
    for (int k = 0; k < 2; ++k) {
      const std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (j != i) {
        coo.add(i, j, C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
      }
    }
  }
  const SparseFactorization<C> f(coo);
  const std::size_t m = 7;
  Matrix<C> b(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      b(i, j) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
  }
  Matrix<C> x;
  f.solve_into(b, x);
  ASSERT_EQ(x.rows(), n);
  ASSERT_EQ(x.cols(), m);
  std::vector<C> col(n), xc(n);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
    f.solve_into(col, xc);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(x(i, j) - xc[i]), 0.0, 1e-11);
    }
  }
}

}  // namespace
}  // namespace ftdiag::linalg
