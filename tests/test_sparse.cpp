#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <complex>

#include "linalg/lu.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag::linalg {
namespace {

using C = std::complex<double>;

TEST(Coo, DuplicatesSumOnDensify) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  coo.add(1, 1, -1.0);
  const auto dense = coo.to_dense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(dense(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(dense(0, 1), 0.0);
}

TEST(Coo, ExactZerosDropped) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 0.0);
  EXPECT_EQ(coo.entry_count(), 0u);
}

TEST(Csr, BuildsSortedRows) {
  CooMatrix<double> coo(2, 3);
  coo.add(0, 2, 3.0);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 2.0);
  const CsrMatrix<double> csr(coo);
  EXPECT_EQ(csr.nnz(), 3u);
  const auto row0 = csr.row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0].first, 0u);
  EXPECT_EQ(row0[1].first, 2u);
}

TEST(Csr, DuplicatesSummedAndZerosCancelled) {
  CooMatrix<double> coo(1, 2);
  coo.add(0, 0, 2.0);
  coo.add(0, 0, -2.0);
  coo.add(0, 1, 5.0);
  const CsrMatrix<double> csr(coo);
  EXPECT_EQ(csr.nnz(), 1u);  // the cancelled entry vanished
}

TEST(Csr, MultiplyMatchesDense) {
  Rng rng(7);
  CooMatrix<double> coo(5, 5);
  for (int k = 0; k < 12; ++k) {
    coo.add(static_cast<std::size_t>(rng.uniform_int(0, 4)),
            static_cast<std::size_t>(rng.uniform_int(0, 4)),
            rng.uniform(-1.0, 1.0));
  }
  const CsrMatrix<double> csr(coo);
  const auto dense = coo.to_dense();
  std::vector<double> x(5);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto y_sparse = csr.multiply(x);
  const auto y_dense = dense * x;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-14);
  }
}

TEST(SparseLu, SolvesSmallSystem) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 2.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 3.0);
  const SparseLu<double> lu(coo);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseLu, RequiresSquare) {
  CooMatrix<double> coo(2, 3);
  coo.add(0, 0, 1.0);
  EXPECT_THROW((void)SparseLu<double>(coo), NumericError);
}

TEST(SparseLu, SingularThrows) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);  // column 1 empty -> singular
  EXPECT_THROW((void)SparseLu<double>(coo), NumericError);
}

TEST(SparseLu, ZeroMatrixThrows) {
  CooMatrix<double> coo(3, 3);
  EXPECT_THROW((void)SparseLu<double>(coo), NumericError);
}

TEST(SparseLu, PermutedIdentity) {
  CooMatrix<double> coo(3, 3);
  coo.add(0, 2, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(2, 1, 1.0);
  const SparseLu<double> lu(coo);
  const auto x = lu.solve({10.0, 20.0, 30.0});
  EXPECT_NEAR(x[2], 10.0, 1e-12);
  EXPECT_NEAR(x[0], 20.0, 1e-12);
  EXPECT_NEAR(x[1], 30.0, 1e-12);
}

/// Property sweep: random sparse diagonally-dominant systems; sparse LU
/// must match the dense solution.
class SparseLuAgreementTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SparseLuAgreementTest, MatchesDenseSolver) {
  const std::size_t n = GetParam();
  Rng rng(500 + n);
  CooMatrix<double> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0 + rng.uniform());
    // A few off-diagonal entries per row.
    for (int k = 0; k < 3; ++k) {
      const std::size_t j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (j != i) coo.add(i, j, rng.uniform(-1.0, 1.0));
    }
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  const auto x_sparse = SparseLu<double>(coo).solve(b);
  const auto x_dense = solve_dense(coo.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_sparse[i], x_dense[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuAgreementTest,
                         ::testing::Values(2, 5, 10, 25, 50, 100, 200));

TEST(SparseLu, ComplexAgreesWithDense) {
  Rng rng(42);
  const std::size_t n = 20;
  CooMatrix<C> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, C(3.0 + rng.uniform(), rng.uniform()));
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (j != i) coo.add(i, j, C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)));
  }
  std::vector<C> b(n);
  for (auto& v : b) v = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  const auto xs = SparseLu<C>(coo).solve(b);
  const auto xd = solve_dense(coo.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(xs[i] - xd[i]), 0.0, 1e-9);
  }
}

TEST(SparseLu, FactorNnzReported) {
  CooMatrix<double> coo(3, 3);
  for (std::size_t i = 0; i < 3; ++i) coo.add(i, i, 1.0);
  const SparseLu<double> lu(coo);
  EXPECT_EQ(lu.factor_nnz(), 3u);  // diagonal only, no fill-in
  EXPECT_EQ(lu.size(), 3u);
}

TEST(SparseLu, InvalidPivotThresholdRejected) {
  CooMatrix<double> coo(1, 1);
  coo.add(0, 0, 1.0);
  EXPECT_DEATH(SparseLu<double>(coo, 0.0), "pivot threshold");
}

}  // namespace
}  // namespace ftdiag::linalg
