#include "ga/genetic_algorithm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ftdiag::ga {
namespace {

/// Smooth single-peak objective over [0, 5]^n with optimum at 3.0.
double bump(const std::vector<double>& genes) {
  double acc = 1.0;
  for (double g : genes) acc *= std::exp(-(g - 3.0) * (g - 3.0));
  return acc;
}

TEST(GaConfig, PaperParameters) {
  const GaConfig paper = GaConfig::paper();
  EXPECT_EQ(paper.population_size, 128u);
  EXPECT_EQ(paper.generations, 15u);
  EXPECT_DOUBLE_EQ(paper.reproduction_rate, 0.5);
  EXPECT_DOUBLE_EQ(paper.mutation_rate, 0.4);
  EXPECT_EQ(paper.selection, SelectionKind::kRoulette);
  EXPECT_NO_THROW(paper.check());
}

TEST(GaConfig, InvalidValuesRejected) {
  GaConfig c;
  c.population_size = 0;
  EXPECT_THROW(c.check(), ConfigError);
  c = GaConfig{};
  c.generations = 0;
  EXPECT_THROW(c.check(), ConfigError);
  c = GaConfig{};
  c.reproduction_rate = 1.5;
  EXPECT_THROW(c.check(), ConfigError);
  c = GaConfig{};
  c.mutation_rate = -0.1;
  EXPECT_THROW(c.check(), ConfigError);
  c = GaConfig{};
  c.mutation_sigma = 0.0;
  EXPECT_THROW(c.check(), ConfigError);
  c = GaConfig{};
  c.mutation_sigma = -0.5;
  EXPECT_THROW(c.check(), ConfigError);
  c = GaConfig{};
  c.elite_count = 1000;
  EXPECT_THROW(c.check(), ConfigError);
}

TEST(GaConfig, EliteCountMustLeaveRoomForOffspring) {
  GaConfig c;
  c.population_size = 16;
  c.elite_count = 16;  // a population of pure elites never searches
  EXPECT_THROW(c.check(), ConfigError);
  c.elite_count = 15;
  EXPECT_NO_THROW(c.check());
}

TEST(GaConfig, SeedGenomeDimensionMismatchRejected) {
  GaConfig c;
  c.population_size = 8;
  c.generations = 1;
  c.seed_genomes = {{1.0, 2.0, 3.0}};  // 3 genes in a 2-gene search
  EXPECT_THROW(c.check(2), ConfigError);
  EXPECT_NO_THROW(c.check(3));

  const GeneticAlgorithm ga(c);
  Rng rng(1);
  EXPECT_THROW((void)ga.optimize(bump, 2, {0.0, 5.0}, rng), ConfigError);
}

TEST(Ga, FindsTheBumpOptimum) {
  GaConfig config;
  config.population_size = 64;
  config.generations = 30;
  const GeneticAlgorithm ga(config);
  Rng rng(42);
  const auto result = ga.optimize(bump, 2, {0.0, 5.0}, rng);
  EXPECT_GT(result.best.fitness, 0.95);
  EXPECT_NEAR(result.best.genes[0], 3.0, 0.3);
  EXPECT_NEAR(result.best.genes[1], 3.0, 0.3);
}

TEST(Ga, HistoryCoversEveryGeneration) {
  const GeneticAlgorithm ga(GaConfig::paper());
  Rng rng(1);
  const auto result = ga.optimize(bump, 1, {0.0, 5.0}, rng);
  EXPECT_EQ(result.history.size(), 16u);  // initial + 15 generations
  EXPECT_EQ(result.history.front().generation, 0u);
  EXPECT_EQ(result.history.back().generation, 15u);
  // Cumulative evaluation counts are non-decreasing.
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].evaluations,
              result.history[i - 1].evaluations);
  }
}

TEST(Ga, ElitismMakesBestMonotone) {
  GaConfig config;
  config.population_size = 32;
  config.generations = 20;
  config.elite_count = 2;
  const GeneticAlgorithm ga(config);
  Rng rng(5);
  const auto result = ga.optimize(bump, 3, {0.0, 5.0}, rng);
  double prev = 0.0;
  for (const auto& g : result.history) {
    EXPECT_GE(g.best + 1e-12, prev);
    prev = g.best;
  }
}

TEST(Ga, DeterministicPerSeed) {
  const GeneticAlgorithm ga(GaConfig::paper());
  Rng rng_a(7), rng_b(7);
  const auto a = ga.optimize(bump, 2, {0.0, 5.0}, rng_a);
  const auto b = ga.optimize(bump, 2, {0.0, 5.0}, rng_b);
  EXPECT_EQ(a.best.genes, b.best.genes);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Ga, TargetFitnessStopsEarly) {
  GaConfig config;
  config.population_size = 64;
  config.generations = 100;
  config.target_fitness = 0.5;
  const GeneticAlgorithm ga(config);
  Rng rng(3);
  const auto result = ga.optimize(bump, 1, {0.0, 5.0}, rng);
  EXPECT_GE(result.best.fitness, 0.5);
  EXPECT_LT(result.history.size(), 101u);
}

TEST(Ga, GenesStayWithinBounds) {
  GaConfig config;
  config.population_size = 32;
  config.generations = 10;
  config.mutation_sigma = 3.0;  // aggressive, will hit the walls
  const GeneticAlgorithm ga(config);
  Rng rng(11);
  const GeneBounds bounds{1.0, 2.0};
  const auto result = ga.optimize(
      [&](const std::vector<double>& genes) {
        for (double g : genes) {
          EXPECT_GE(g, bounds.lo);
          EXPECT_LE(g, bounds.hi);
        }
        return bump(genes);
      },
      2, bounds, rng);
  for (double g : result.best.genes) {
    EXPECT_GE(g, bounds.lo);
    EXPECT_LE(g, bounds.hi);
  }
}

TEST(Ga, EvaluationBudgetMatchesConfig) {
  GaConfig config;
  config.population_size = 50;
  config.generations = 10;
  config.reproduction_rate = 0.5;
  const GeneticAlgorithm ga(config);
  Rng rng(13);
  const auto result = ga.optimize(bump, 1, {0.0, 5.0}, rng);
  // 50 initial + 10 * 25 offspring.
  EXPECT_EQ(result.evaluations, 50u + 10u * 25u);
}

TEST(Ga, ZeroReproductionRateStillRuns) {
  GaConfig config;
  config.population_size = 16;
  config.generations = 3;
  config.reproduction_rate = 0.0;  // pure survival
  const GeneticAlgorithm ga(config);
  Rng rng(17);
  const auto result = ga.optimize(bump, 1, {0.0, 5.0}, rng);
  EXPECT_EQ(result.evaluations, 16u);  // only the initial population
}

TEST(Ga, SeedGenomesEnterTheInitialPopulation) {
  // With elitism and a seed at the exact optimum, the final best must be
  // that seed (nothing random can beat fitness 1 at the bump's peak).
  GaConfig config;
  config.population_size = 16;
  config.generations = 2;
  config.seed_genomes = {{3.0, 3.0}};
  const GeneticAlgorithm ga(config);
  Rng rng(23);
  const auto result = ga.optimize(bump, 2, {0.0, 5.0}, rng);
  EXPECT_DOUBLE_EQ(result.best.fitness, 1.0);
  EXPECT_DOUBLE_EQ(result.best.genes[0], 3.0);
  EXPECT_DOUBLE_EQ(result.best.genes[1], 3.0);
}

TEST(Ga, SeedGenomesClampedToBounds) {
  GaConfig config;
  config.population_size = 8;
  config.generations = 1;
  config.seed_genomes = {{-100.0, 100.0}};
  const GeneticAlgorithm ga(config);
  Rng rng(29);
  const auto result = ga.optimize(
      [&](const std::vector<double>& genes) {
        EXPECT_GE(genes[0], 1.0);
        EXPECT_LE(genes[1], 2.0);
        return bump(genes);
      },
      2, {1.0, 2.0}, rng);
  (void)result;
}

TEST(Ga, ExcessSeedsAreDropped) {
  GaConfig config;
  config.population_size = 4;
  config.generations = 1;
  for (int i = 0; i < 10; ++i) {
    config.seed_genomes.push_back({static_cast<double>(i)});
  }
  const GeneticAlgorithm ga(config);
  Rng rng(31);
  const auto result = ga.optimize(bump, 1, {0.0, 5.0}, rng);
  // 4 initial (seeded) + 2 offspring.
  EXPECT_EQ(result.history.front().evaluations, 4u);
}

TEST(Ga, TournamentVariantAlsoConverges) {
  GaConfig config;
  config.population_size = 64;
  config.generations = 25;
  config.selection = SelectionKind::kTournament;
  config.crossover = CrossoverKind::kBlend;
  const GeneticAlgorithm ga(config);
  Rng rng(19);
  const auto result = ga.optimize(bump, 2, {0.0, 5.0}, rng);
  EXPECT_GT(result.best.fitness, 0.9);
}

}  // namespace
}  // namespace ftdiag::ga
