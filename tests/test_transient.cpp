#include "mna/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "netlist/circuit.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {
namespace {

netlist::Circuit rc_circuit(double r, double c_farads) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", r);
  c.add_capacitor("C1", "out", "0", c_farads);
  return c;
}

TEST(Waveform, OffsetPlusTones) {
  SourceWaveform w;
  w.offset = 1.0;
  w.tones.push_back({2.0, 100.0, 90.0});  // 2*sin(wt + 90deg) = 2*cos(wt)
  EXPECT_NEAR(w.at(0.0), 1.0 + 2.0, 1e-12);
}

TEST(Waveform, SineFactory) {
  const auto w = SourceWaveform::sine(3.0, 50.0);
  EXPECT_NEAR(w.at(0.0), 0.0, 1e-12);
  EXPECT_NEAR(w.at(1.0 / (4.0 * 50.0)), 3.0, 1e-9);
}

TEST(Waveform, ToneSetFactory) {
  const auto w = SourceWaveform::tone_set({1e3, 2e3}, 0.5);
  EXPECT_EQ(w.tones.size(), 2u);
  EXPECT_DOUBLE_EQ(w.tones[0].amplitude, 0.5);
}

TEST(Transient, RcStepResponseMatchesExponential) {
  TransientAnalysis tr(rc_circuit(1e3, 1e-6));  // tau = 1 ms
  TransientSpec spec;
  spec.t_stop = 5e-3;
  spec.dt = 1e-6;
  spec.start_from_dc = false;
  spec.waveforms["V1"] = SourceWaveform{1.0, {}};  // 1 V step at t=0
  const auto result = tr.run(spec, {"out"});
  const auto& v = result.node("out");
  ASSERT_EQ(v.size(), result.time_s.size());
  // Compare at t = tau and t = 3 tau.
  const std::size_t i_tau = 1000;
  EXPECT_NEAR(v[i_tau], 1.0 - std::exp(-1.0), 2e-3);
  EXPECT_NEAR(v[3 * i_tau], 1.0 - std::exp(-3.0), 2e-3);
  EXPECT_NEAR(v.back(), 1.0, 1e-2);
}

TEST(Transient, BackwardEulerAlsoConverges) {
  TransientAnalysis tr(rc_circuit(1e3, 1e-6));
  TransientSpec spec;
  spec.t_stop = 5e-3;
  spec.dt = 1e-6;
  spec.method = IntegrationMethod::kBackwardEuler;
  spec.start_from_dc = false;
  spec.waveforms["V1"] = SourceWaveform{1.0, {}};
  const auto v = tr.run(spec, {"out"}).node("out");
  EXPECT_NEAR(v[1000], 1.0 - std::exp(-1.0), 5e-3);
}

TEST(Transient, SineSteadyStateMatchesAcMagnitude) {
  // Drive at the RC cutoff: steady-state amplitude must be 1/sqrt(2).
  const double r = 1e3, cap = 159.15494e-9;  // fc ~ 1 kHz
  TransientAnalysis tr(rc_circuit(r, cap));
  TransientSpec spec;
  spec.t_stop = 20e-3;
  spec.dt = 0.5e-6;
  spec.waveforms["V1"] = SourceWaveform::sine(1.0, 1000.0);
  const auto v = tr.run(spec, {"out"}).node("out");
  // Peak over the last 2 periods.
  double peak = 0.0;
  for (std::size_t i = v.size() - 4000; i < v.size(); ++i) {
    peak = std::max(peak, std::fabs(v[i]));
  }
  EXPECT_NEAR(peak, 1.0 / std::sqrt(2.0), 5e-3);
}

TEST(Transient, StartsFromDcOperatingPoint) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 2.0);  // DC source
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_capacitor("C1", "out", "0", 1e-6);
  c.add_resistor("R2", "out", "0", 1e3);
  TransientAnalysis tr(c);
  TransientSpec spec;
  spec.t_stop = 1e-3;
  spec.dt = 1e-6;
  const auto v = tr.run(spec, {"out"}).node("out");
  // Already settled at the divider voltage; must stay there.
  EXPECT_NEAR(v.front(), 1.0, 1e-9);
  EXPECT_NEAR(v.back(), 1.0, 1e-6);
}

TEST(Transient, RlCurrentRise) {
  // i(t) = (V/R)(1 - exp(-tR/L)) observed via the resistor drop.
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 0.0);
  c.add_resistor("R1", "in", "mid", 100.0);
  c.add_inductor("L1", "mid", "0", 10e-3);  // tau = L/R = 0.1 ms
  TransientAnalysis tr(c);
  TransientSpec spec;
  spec.t_stop = 1e-3;
  spec.dt = 0.2e-6;
  spec.start_from_dc = false;
  spec.waveforms["V1"] = SourceWaveform{1.0, {}};
  const auto v_mid = tr.run(spec, {"mid"}).node("mid");
  // v_mid = V * exp(-t/tau): check at t = tau (index 500).
  EXPECT_NEAR(v_mid[500], std::exp(-1.0), 5e-3);
}

TEST(Transient, MultiToneStimulusRuns) {
  TransientAnalysis tr(rc_circuit(1e3, 100e-9));
  TransientSpec spec;
  spec.t_stop = 2e-3;
  spec.dt = 1e-6;
  spec.waveforms["V1"] = SourceWaveform::tone_set({500.0, 3000.0});
  const auto result = tr.run(spec, {"out", "in"});
  EXPECT_EQ(result.node("out").size(), result.time_s.size());
  EXPECT_EQ(result.node("in").size(), result.time_s.size());
  // The input node reproduces the stimulus.
  const double t = result.time_s[100];
  const double expected =
      std::sin(2 * std::numbers::pi * 500.0 * t) +
      std::sin(2 * std::numbers::pi * 3000.0 * t);
  EXPECT_NEAR(result.node("in")[100], expected, 1e-9);
}

TEST(Transient, BadSpecsRejected) {
  TransientAnalysis tr(rc_circuit(1e3, 100e-9));
  TransientSpec bad_dt;
  bad_dt.dt = 0.0;
  EXPECT_THROW(tr.run(bad_dt, {"out"}), ConfigError);

  TransientSpec bad_stop;
  bad_stop.t_stop = 1e-9;
  bad_stop.dt = 1e-6;
  EXPECT_THROW(tr.run(bad_stop, {"out"}), ConfigError);

  TransientSpec bad_target;
  bad_target.waveforms["R1"] = SourceWaveform::sine(1.0, 1e3);
  EXPECT_THROW(tr.run(bad_target, {"out"}), ConfigError);
}

TEST(Transient, UnknownRecordedNodeThrows) {
  TransientAnalysis tr(rc_circuit(1e3, 100e-9));
  TransientSpec spec;
  const auto result = tr.run(spec, {"out"});
  EXPECT_THROW((void)result.node("nope"), ConfigError);
}

}  // namespace
}  // namespace ftdiag::mna
