#include "core/atpg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/nf_biquad.hpp"
#include "ga/baselines.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

class AtpgTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    flow_ = new AtpgFlow(circuits::make_paper_cut());
  }
  static void TearDownTestSuite() {
    delete flow_;
    flow_ = nullptr;
  }
  static AtpgFlow* flow_;
};

AtpgFlow* AtpgTest::flow_ = nullptr;

TEST(AtpgConfig, DefaultsAreValid) { EXPECT_NO_THROW(AtpgConfig{}.check()); }

TEST(AtpgConfig, BadConfigsRejected) {
  AtpgConfig no_freq;
  no_freq.n_frequencies = 0;
  EXPECT_THROW(no_freq.check(), ConfigError);

  // Fitness selection is typed now; bad names die at the parse helper.
  EXPECT_THROW(parse_fitness_kind("nope"), ConfigError);

  AtpgConfig bad_ga;
  bad_ga.ga.population_size = 0;
  EXPECT_THROW(bad_ga.check(), ConfigError);
}

TEST(Atpg, ToTestVectorConvertsAndSorts) {
  const auto tv = AtpgFlow::to_test_vector({4.0, 2.0});  // 10^4, 10^2
  ASSERT_EQ(tv.frequencies_hz.size(), 2u);
  EXPECT_NEAR(tv.frequencies_hz[0], 100.0, 1e-9);
  EXPECT_NEAR(tv.frequencies_hz[1], 10000.0, 1e-6);
}

TEST_F(AtpgTest, BoundsDerivedFromBand) {
  const auto bounds = flow_->bounds();
  EXPECT_NEAR(bounds.lo, 1.0, 1e-12);  // 10 Hz
  EXPECT_NEAR(bounds.hi, 5.0, 1e-12);  // 100 kHz
}

TEST_F(AtpgTest, DictionaryBuiltEagerly) {
  EXPECT_EQ(flow_->dictionary().fault_count(), 56u);
  EXPECT_EQ(flow_->cut().name, "nf_biquad");
}

TEST_F(AtpgTest, PaperGaFindsNonIntersectingVector) {
  const AtpgResult result = flow_->run();
  // The headline reproduction: the GA must find a frequency pair whose
  // seven trajectories do not intersect (fitness 1 = zero intersections).
  EXPECT_DOUBLE_EQ(result.best.fitness, 1.0);
  EXPECT_EQ(result.best.intersections, 0u);
  EXPECT_EQ(result.best.vector.frequencies_hz.size(), 2u);
  EXPECT_EQ(result.dictionary_faults, 56u);
  // Paper parameters: 128 individuals, 15 generations.
  EXPECT_EQ(result.search.history.front().evaluations, 128u);
  EXPECT_EQ(result.search.history.size(), 16u);  // gen 0..15
}

TEST_F(AtpgTest, ConvergenceHistoryIsMonotoneInBest) {
  const AtpgResult result = flow_->run();
  double prev = 0.0;
  for (const auto& g : result.search.history) {
    EXPECT_GE(g.best + 1e-12, prev);  // elitism forbids regression
    prev = g.best;
    EXPECT_LE(g.worst, g.mean + 1e-12);
    EXPECT_LE(g.mean, g.best + 1e-12);
  }
}

TEST_F(AtpgTest, DeterministicForFixedSeed) {
  const AtpgResult a = flow_->run();
  const AtpgResult b = flow_->run();
  EXPECT_EQ(a.best.vector.frequencies_hz, b.best.vector.frequencies_hz);
  EXPECT_EQ(a.search.evaluations, b.search.evaluations);
}

TEST_F(AtpgTest, RunWithBaselineOptimizer) {
  const ga::RandomSearch random(512);
  const AtpgResult result = flow_->run_with(random, 7);
  EXPECT_GT(result.best.fitness, 0.0);
  EXPECT_EQ(result.search.evaluations, 512u);
}

TEST_F(AtpgTest, ScoreExternalVector) {
  const auto score = flow_->score({{700.0, 1600.0}});
  EXPECT_GT(score.fitness, 0.0);
  EXPECT_EQ(score.vector.frequencies_hz.size(), 2u);
}

TEST(Atpg, SeparationFitnessFlowAlsoConverges) {
  AtpgConfig config;
  config.fitness = FitnessKind::kSeparation;
  config.ga.generations = 8;
  const AtpgFlow flow(circuits::make_paper_cut(), config);
  const AtpgResult result = flow.run();
  EXPECT_GT(result.best.fitness, 0.1);
  // A good separation vector should also have zero intersections here.
  EXPECT_EQ(result.best.intersections, 0u);
}

TEST(Atpg, SensitivitySeededFlowStartsStrong) {
  // Seeded with screened frequency pairs, the very first generation's best
  // must already be high on the continuous hybrid objective.
  AtpgConfig seeded;
  seeded.fitness = FitnessKind::kHybrid;
  seeded.seed_with_sensitivity = true;
  seeded.ga.generations = 3;
  const AtpgFlow flow(circuits::make_paper_cut(), seeded);
  const AtpgResult result = flow.run();
  EXPECT_GT(result.search.history.front().best, 0.70);
  EXPECT_EQ(result.best.intersections, 0u);
}

TEST(Atpg, ThreeFrequencyFlow) {
  AtpgConfig config;
  config.n_frequencies = 3;
  config.ga.generations = 5;
  config.ga.population_size = 32;
  const AtpgFlow flow(circuits::make_paper_cut(), config);
  const AtpgResult result = flow.run();
  EXPECT_EQ(result.best.vector.frequencies_hz.size(), 3u);
  EXPECT_GT(result.best.fitness, 0.0);
}

}  // namespace
}  // namespace ftdiag::core
