#include "mna/ac_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuits/ladders.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {
namespace {

netlist::Circuit rc_lowpass() {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_capacitor("C1", "out", "0", 159.15494e-9);  // fc ~ 1 kHz
  return c;
}

TEST(AcAnalysis, RequiresAcSource) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 5.0, 0.0);  // DC only
  c.add_resistor("R1", "in", "0", 1e3);
  EXPECT_THROW(AcAnalysis{c}, CircuitError);
}

TEST(AcAnalysis, GroundNodeIsZero) {
  AcAnalysis ac(rc_lowpass());
  EXPECT_EQ(ac.node_voltage(100.0, "0"), Complex(0.0, 0.0));
}

TEST(AcAnalysis, SweepOverGrid) {
  AcAnalysis ac(rc_lowpass());
  const auto response =
      ac.sweep(FrequencyGrid::log_sweep(10.0, 100e3, 41), "out");
  EXPECT_EQ(response.size(), 41u);
  // Monotone decreasing low-pass.
  for (std::size_t i = 1; i < response.size(); ++i) {
    EXPECT_LT(response.magnitude(i), response.magnitude(i - 1));
  }
}

TEST(AcAnalysis, SweepOverExplicitFrequencies) {
  AcAnalysis ac(rc_lowpass());
  const auto response = ac.sweep(std::vector<double>{100.0, 1000.0}, "out");
  ASSERT_EQ(response.size(), 2u);
  EXPECT_GT(response.magnitude(0), response.magnitude(1));
}

TEST(AcAnalysis, MagnitudeFollowsFirstOrderModel) {
  AcAnalysis ac(rc_lowpass());
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 159.15494e-9);
  for (double f : {10.0, 100.0, 1000.0, 10000.0}) {
    const double expected = 1.0 / std::sqrt(1.0 + (f / fc) * (f / fc));
    EXPECT_NEAR(std::abs(ac.node_voltage(f, "out")), expected, 1e-6);
  }
}

TEST(AcAnalysis, SolveReturnsAllUnknowns) {
  AcAnalysis ac(rc_lowpass());
  const auto solution = ac.solve(1000.0);
  EXPECT_EQ(solution.size(), ac.system().unknown_count());
}

TEST(AcAnalysis, LargeLadderUsesSparsePathAndStaysAccurate) {
  // 160 sections -> 161 node unknowns + source branch > kDenseLimit.
  circuits::RcLadderDesign design;
  design.sections = 160;
  const auto cut = circuits::make_rc_ladder(design);
  AcAnalysis ac(cut.circuit);
  EXPECT_GT(ac.system().unknown_count(), AcAnalysis::kDenseLimit);
  // At a frequency far below the section cutoff the ladder passes ~1.
  const double f_section = 1.0 / (2.0 * std::numbers::pi * 1e3 * 100e-9);
  const auto h = ac.node_voltage(f_section / 1e5, cut.output_node);
  EXPECT_NEAR(std::abs(h), 1.0, 1e-2);
}

TEST(AcAnalysis, DenseAndSparseAgreeOnMediumCircuit) {
  // Same circuit solved below and above the dense limit must agree; build
  // a ladder and compare one frequency against doubling the threshold via
  // direct solves (the two paths share assembly, so compare to analytic
  // 1-section behaviour instead on a small ladder).
  circuits::RcLadderDesign design;
  design.sections = 1;
  const auto cut = circuits::make_rc_ladder(design);
  AcAnalysis ac(cut.circuit);
  const double fc = 1.0 / (2.0 * std::numbers::pi * design.r * design.c);
  EXPECT_NEAR(std::abs(ac.node_voltage(fc, cut.output_node)),
              1.0 / std::sqrt(2.0), 1e-9);
}

TEST(AcAnalysis, UnsortedSweepFrequenciesRejected) {
  AcAnalysis ac(rc_lowpass());
  EXPECT_DEATH(ac.sweep(std::vector<double>{1000.0, 10.0}, "out"), "ascend");
}

}  // namespace
}  // namespace ftdiag::mna
