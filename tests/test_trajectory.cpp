#include "core/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "circuits/nf_biquad.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

class TrajectoryTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    const auto cut = circuits::make_paper_cut();
    dict_ = new faults::FaultDictionary(faults::FaultDictionary::build(
        cut, faults::FaultUniverse::over_testable(cut)));
  }
  static void TearDownTestSuite() {
    delete dict_;
    dict_ = nullptr;
  }
  static faults::FaultDictionary* dict_;
};

faults::FaultDictionary* TrajectoryTest::dict_ = nullptr;

TEST_F(TrajectoryTest, OneTrajectoryPerSite) {
  const auto trajectories =
      build_trajectories(*dict_, {400.0, 1200.0}, SamplingPolicy{});
  EXPECT_EQ(trajectories.size(), 7u);
  for (const auto& t : trajectories) {
    EXPECT_EQ(t.dimension(), 2u);
  }
}

TEST_F(TrajectoryTest, GoldenPointInsertedAtZeroDeviation) {
  const auto trajectories =
      build_trajectories(*dict_, {400.0, 1200.0}, SamplingPolicy{});
  for (const auto& t : trajectories) {
    // 8 dictionary deviations + inserted golden point.
    EXPECT_EQ(t.point_count(), 9u);
    bool found_origin = false;
    for (const auto& p : t.points()) {
      if (p.deviation == 0.0) {
        found_origin = true;
        EXPECT_NEAR(norm(p.coords), 0.0, 1e-12);
      }
    }
    EXPECT_TRUE(found_origin) << t.site();
  }
}

TEST_F(TrajectoryTest, PointsOrderedByDeviation) {
  const auto trajectories =
      build_trajectories(*dict_, {250.0, 900.0}, SamplingPolicy{});
  for (const auto& t : trajectories) {
    for (std::size_t i = 1; i < t.point_count(); ++i) {
      EXPECT_LT(t.points()[i - 1].deviation, t.points()[i].deviation);
    }
  }
}

TEST_F(TrajectoryTest, SegmentsConnectConsecutivePoints) {
  const auto trajectories =
      build_trajectories(*dict_, {250.0, 900.0}, SamplingPolicy{});
  const auto& t = trajectories.front();
  const auto segments = t.segments();
  EXPECT_EQ(segments.size(), t.point_count() - 1);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].a, t.points()[i].coords);
    EXPECT_EQ(segments[i].b, t.points()[i + 1].coords);
  }
}

TEST_F(TrajectoryTest, DeviationOnSegmentInterpolatesLinearly) {
  const auto trajectories =
      build_trajectories(*dict_, {250.0, 900.0}, SamplingPolicy{});
  const auto& t = trajectories.front();
  // Segment 0 spans [-0.40, -0.30].
  EXPECT_NEAR(t.deviation_on_segment(0, 0.0), -0.40, 1e-12);
  EXPECT_NEAR(t.deviation_on_segment(0, 1.0), -0.30, 1e-12);
  EXPECT_NEAR(t.deviation_on_segment(0, 0.5), -0.35, 1e-12);
}

TEST_F(TrajectoryTest, MonotonicDeviationsMoveMonotonicallyOutward) {
  // The paper's premise: responses are smooth/monotonic, so distance from
  // the origin grows with |deviation| on each branch.
  const auto trajectories =
      build_trajectories(*dict_, {300.0, 1000.0}, SamplingPolicy{});
  for (const auto& t : trajectories) {
    double prev_neg = std::numeric_limits<double>::infinity();
    double prev_pos = 0.0;
    for (const auto& p : t.points()) {
      const double r = norm(p.coords);
      if (p.deviation < 0.0) {
        EXPECT_LT(r, prev_neg + 1e-12) << t.site() << " @ " << p.deviation;
        prev_neg = r;
      } else if (p.deviation > 0.0) {
        EXPECT_GT(r, prev_pos - 1e-12) << t.site() << " @ " << p.deviation;
        prev_pos = r;
      }
    }
  }
}

TEST_F(TrajectoryTest, LengthAndExcursionPositive) {
  const auto trajectories =
      build_trajectories(*dict_, {300.0, 1000.0}, SamplingPolicy{});
  for (const auto& t : trajectories) {
    EXPECT_GT(t.length(), 0.0) << t.site();
    EXPECT_GT(t.max_excursion(), 0.0) << t.site();
    EXPECT_LE(t.max_excursion(), t.length() + 1e-12);
  }
}

TEST_F(TrajectoryTest, HigherDimensionalTrajectories) {
  const auto trajectories = build_trajectories(
      *dict_, {200.0, 800.0, 3200.0}, SamplingPolicy{});
  for (const auto& t : trajectories) EXPECT_EQ(t.dimension(), 3u);
}

TEST(FaultTrajectory, RejectsTooFewPoints) {
  EXPECT_THROW(FaultTrajectory("X", {{0.0, {0.0, 0.0}}}), ConfigError);
}

TEST(FaultTrajectory, RejectsUnorderedPoints) {
  std::vector<TrajectoryPoint> pts = {{0.1, {1.0, 0.0}}, {-0.1, {0.0, 1.0}}};
  EXPECT_DEATH(FaultTrajectory("X", std::move(pts)), "ordered");
}

TEST(FaultTrajectory, RejectsMixedDimensions) {
  std::vector<TrajectoryPoint> pts = {{-0.1, {1.0, 0.0}}, {0.1, {0.0}}};
  EXPECT_DEATH(FaultTrajectory("X", std::move(pts)), "dimension");
}

}  // namespace
}  // namespace ftdiag::core
