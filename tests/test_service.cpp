/// Service-layer tests: the persistent dictionary store (cold build /
/// warm load / corruption rejection / LRU eviction / build sharing) and
/// the concurrent diagnosis service (batched results bit-identical to
/// serial Session::diagnose for any producer count, worker count and
/// batching configuration).
#include "service/diagnosis_service.hpp"
#include "service/dictionary_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <thread>

#include "circuits/nf_biquad.hpp"
#include "io/dictionary_io.hpp"
#include "mna/frequency_grid.hpp"
#include "session.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag::service {
namespace {

namespace fs = std::filesystem;

/// The paper CUT on a tiny grid so store builds stay milliseconds.
circuits::CircuitUnderTest small_cut(std::size_t grid_points = 4) {
  auto cut = circuits::make_paper_cut();
  cut.dictionary_grid =
      mna::FrequencyGrid::log_sweep(100.0, 10000.0, grid_points);
  return cut;
}

faults::DeviationSpec coarse_spec(double step = 0.2) {
  faults::DeviationSpec spec;
  spec.step_fraction = step;
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

void expect_bit_identical(const faults::FaultDictionary& a,
                          const faults::FaultDictionary& b) {
  ASSERT_EQ(a.fault_count(), b.fault_count());
  EXPECT_EQ(a.frequencies(), b.frequencies());
  EXPECT_EQ(a.golden().values(), b.golden().values());
  EXPECT_EQ(a.site_labels(), b.site_labels());
  for (std::size_t i = 0; i < a.fault_count(); ++i) {
    EXPECT_EQ(a.entries()[i].fault, b.entries()[i].fault);
    EXPECT_EQ(a.entries()[i].response.values(),
              b.entries()[i].response.values());
  }
}

// --------------------------------------------------------------- store

TEST(StoreOptions, Validated) {
  StoreOptions zero_capacity;
  zero_capacity.capacity = 0;
  EXPECT_THROW(DictionaryStore{zero_capacity}, ConfigError);

  StoreOptions zero_shards;
  zero_shards.shards = 0;
  EXPECT_THROW(DictionaryStore{zero_shards}, ConfigError);
}

TEST(DictionaryStore, ColdBuildPersistsThenWarmLoads) {
  const std::string dir = fresh_dir("ftdiag_store_cold_warm");
  const auto cut = small_cut();

  StoreOptions options;
  options.root_dir = dir;
  DictionaryStore cold(options);
  const auto built = cold.get(cut, coarse_spec());
  ASSERT_TRUE(built);
  EXPECT_EQ(cold.stats().builds, 1u);
  EXPECT_EQ(cold.stats().persisted, 1u);
  const std::string key =
      dictionary_cache_key(cut, coarse_spec(), faults::SimOptions{});
  EXPECT_TRUE(fs::exists(cold.path_for(key)));

  // Same store again: the memory tier answers, same pointer.
  const auto again = cold.get(cut, coarse_spec());
  EXPECT_EQ(again.get(), built.get());
  EXPECT_EQ(cold.stats().memory_hits, 1u);

  // A new store (≈ a new process) warm-loads from disk, bit-identically.
  DictionaryStore warm(options);
  const auto loaded = warm.get(cut, coarse_spec());
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  EXPECT_EQ(warm.stats().builds, 0u);
  expect_bit_identical(*built, *loaded);
}

TEST(DictionaryStore, CorruptArtifactsAreRebuiltNotTrusted) {
  const std::string dir = fresh_dir("ftdiag_store_corrupt");
  const auto cut = small_cut();
  StoreOptions options;
  options.root_dir = dir;
  const std::string key =
      dictionary_cache_key(cut, coarse_spec(), faults::SimOptions{});

  {
    DictionaryStore store(options);
    (void)store.get(cut, coarse_spec());
  }
  const std::string path = dir + "/" + key + ".fdx";
  ASSERT_TRUE(fs::exists(path));

  auto corrupt_with = [&](auto mutate) {
    std::string bytes = io::read_file_bytes(path);
    mutate(bytes);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Bad magic.
  corrupt_with([](std::string& bytes) { bytes[0] = 'X'; });
  {
    DictionaryStore store(options);
    (void)store.get(cut, coarse_spec());
    EXPECT_EQ(store.stats().invalid_files, 1u);
    EXPECT_EQ(store.stats().builds, 1u);      // rebuilt from scratch...
    EXPECT_EQ(store.stats().persisted, 1u);   // ...and re-persisted
  }

  // Flipped payload byte: a block checksum must catch it.
  corrupt_with([](std::string& bytes) { bytes[bytes.size() / 2] ^= 0x01; });
  {
    DictionaryStore store(options);
    (void)store.get(cut, coarse_spec());
    EXPECT_EQ(store.stats().invalid_files, 1u);
    EXPECT_EQ(store.stats().builds, 1u);
  }

  // Truncated file.
  corrupt_with([](std::string& bytes) { bytes.resize(bytes.size() / 3); });
  {
    DictionaryStore store(options);
    (void)store.get(cut, coarse_spec());
    EXPECT_EQ(store.stats().invalid_files, 1u);
    EXPECT_EQ(store.stats().builds, 1u);
  }

  // A valid file written under a different key is a mismatch, not food.
  {
    const auto dict = io::load_dictionary_file(path);  // fresh valid artifact
    io::save_dictionary_file(path, dict, io::DictionaryFormat::kBinary,
                             "someone#else");
    DictionaryStore store(options);
    (void)store.get(cut, coarse_spec());
    EXPECT_EQ(store.stats().invalid_files, 1u);
    EXPECT_EQ(store.stats().builds, 1u);
  }
}

TEST(DictionaryStore, NetlistPathKeysFlattenToSafeFilenames) {
  // Netlist-based CUTs carry a file *path* as their name; the artifact
  // must still land directly under root_dir and warm-load by exact key.
  const std::string dir = fresh_dir("ftdiag_store_pathkey");
  auto cut = small_cut();
  cut.name = "boards/rev2/filter.cir";

  StoreOptions options;
  options.root_dir = dir;
  {
    DictionaryStore store(options);
    (void)store.get(cut, coarse_spec());
    EXPECT_EQ(store.stats().persisted, 1u);
    const std::string path = store.path_for(
        dictionary_cache_key(cut, coarse_spec(), faults::SimOptions{}));
    EXPECT_TRUE(fs::exists(path));
    EXPECT_EQ(fs::path(path).parent_path().string(), dir);
  }
  DictionaryStore warm(options);
  (void)warm.get(cut, coarse_spec());
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  EXPECT_EQ(warm.stats().builds, 0u);
}

TEST(DictionaryStore, LruEvictionIsDeterministic) {
  // One shard, capacity two, no disk: the store is a pure LRU cache and
  // its eviction order is exactly observable through the build counter.
  StoreOptions options;
  options.capacity = 2;
  options.shards = 1;
  DictionaryStore store(options);

  const auto cut = small_cut();
  const auto spec_a = coarse_spec(0.2);
  const auto spec_b = coarse_spec(0.25);
  const auto spec_c = coarse_spec(0.4);

  (void)store.get(cut, spec_a);  // build 1: {A}
  (void)store.get(cut, spec_b);  // build 2: {A, B}
  EXPECT_EQ(store.cached_count(), 2u);
  EXPECT_EQ(store.stats().evictions, 0u);

  (void)store.get(cut, spec_a);  // touch A: B is now least recent
  (void)store.get(cut, spec_c);  // build 3: evicts B -> {A, C}
  EXPECT_EQ(store.cached_count(), 2u);
  EXPECT_EQ(store.stats().evictions, 1u);

  (void)store.get(cut, spec_a);  // still resident
  (void)store.get(cut, spec_c);  // still resident
  EXPECT_EQ(store.stats().builds, 3u);

  (void)store.get(cut, spec_b);  // evicted above: must rebuild
  EXPECT_EQ(store.stats().builds, 4u);
  EXPECT_EQ(store.stats().evictions, 2u);  // A or C made room (A: LRU)

  store.clear();
  EXPECT_EQ(store.cached_count(), 0u);
}

TEST(DictionaryStore, ConcurrentGetsShareOneBuild) {
  StoreOptions options;
  DictionaryStore store(options);
  const auto cut = small_cut();

  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const faults::FaultDictionary>> results(
      kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = store.get(cut, coarse_spec()); });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(store.stats().builds, 1u);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
}

TEST(Session, ResolvesDictionaryThroughTheStore) {
  const std::string dir = fresh_dir("ftdiag_store_session");
  StoreOptions store_options;
  store_options.root_dir = dir;
  auto store = std::make_shared<DictionaryStore>(store_options);

  Session session = SessionBuilder(small_cut()).store(store).build();
  const auto dictionary = session.dictionary();
  EXPECT_EQ(store->stats().builds, 1u);
  EXPECT_EQ(store->stats().persisted, 1u);

  // A second session over the same store shares the artifact in memory.
  Session sibling = SessionBuilder(small_cut()).store(store).build();
  EXPECT_EQ(sibling.dictionary().get(), dictionary.get());
  EXPECT_EQ(store->stats().memory_hits, 1u);
}

// ------------------------------------------------------------- service

/// Shared session with an installed test program; every service test
/// compares against plain serial Session::diagnose on the same handle.
class DiagnosisServiceTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    session_ = new Session(SessionBuilder(small_cut(24))
                               .deviations(coarse_spec())
                               .build());
    session_->use_vector(core::TestVector{{700.0, 1600.0}});

    // Observations: signature points scattered around the trajectory
    // cloud, deterministic across runs.
    Rng rng(7);
    points_ = new std::vector<core::Point>;
    for (std::size_t i = 0; i < 96; ++i) {
      points_->push_back(
          core::Point{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2)});
    }
    serial_ = new std::vector<core::Diagnosis>;
    for (const auto& point : *points_) {
      serial_->push_back(session_->diagnose(point));
    }
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete points_;
    delete session_;
    serial_ = nullptr;
    points_ = nullptr;
    session_ = nullptr;
  }

  static void expect_same(const core::Diagnosis& a, const core::Diagnosis& b) {
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t i = 0; i < a.ranking.size(); ++i) {
      EXPECT_EQ(a.ranking[i].site, b.ranking[i].site);
      EXPECT_EQ(a.ranking[i].distance, b.ranking[i].distance);
      EXPECT_EQ(a.ranking[i].segment_index, b.ranking[i].segment_index);
      EXPECT_EQ(a.ranking[i].t, b.ranking[i].t);
      EXPECT_EQ(a.ranking[i].estimated_deviation,
                b.ranking[i].estimated_deviation);
    }
  }

  /// Submit every point as its own request from \p producers threads and
  /// require every reply to be bit-identical to the serial result.
  static void run_stress(ServiceOptions options, std::size_t producers) {
    DiagnosisService service(options);
    service.add_session("paper", *session_);

    const std::size_t n = points_->size();
    std::vector<std::future<DiagnosisReply>> futures(n);
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (std::size_t i = p; i < n; i += producers) {
          DiagnosisRequest request;
          request.circuit = "paper";
          request.points.push_back((*points_)[i]);
          futures[i] = service.submit(std::move(request));
        }
      });
    }
    for (auto& thread : threads) thread.join();

    for (std::size_t i = 0; i < n; ++i) {
      const DiagnosisReply reply = futures[i].get();
      ASSERT_EQ(reply.results.size(), 1u);
      expect_same(reply.results.front(), (*serial_)[i]);
    }

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, n);
    EXPECT_EQ(stats.completed, n);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.batched_requests, n);
    EXPECT_GE(stats.batches, 1u);
    // Latency percentiles come from one log2 histogram, so they are
    // powers of two and monotone: 0 < p50 <= p95 <= p99.
    EXPECT_GT(stats.p50_latency_us, 0.0);
    EXPECT_GE(stats.p95_latency_us, stats.p50_latency_us);
    EXPECT_GE(stats.p99_latency_us, stats.p95_latency_us);
  }

  static Session* session_;
  static std::vector<core::Point>* points_;
  static std::vector<core::Diagnosis>* serial_;
};

Session* DiagnosisServiceTest::session_ = nullptr;
std::vector<core::Point>* DiagnosisServiceTest::points_ = nullptr;
std::vector<core::Diagnosis>* DiagnosisServiceTest::serial_ = nullptr;

TEST_F(DiagnosisServiceTest, OptionsValidated) {
  ServiceOptions zero_queue;
  zero_queue.queue_capacity = 0;
  EXPECT_THROW(DiagnosisService{zero_queue}, ConfigError);

  ServiceOptions zero_batch;
  zero_batch.max_batch = 0;
  EXPECT_THROW(DiagnosisService{zero_batch}, ConfigError);

  // The same validation runs behind SessionBuilder::service.
  EXPECT_THROW(SessionBuilder(small_cut()).service(zero_batch).build(),
               ConfigError);
}

TEST_F(DiagnosisServiceTest, BatchedIdenticalToSerialAcrossConfigs) {
  // No coalescing at all, aggressive coalescing, tiny batches with many
  // dispatchers, big batches with parallel point fan-out: every
  // configuration must produce the serial bits.
  ServiceOptions no_batching;
  no_batching.workers = 1;
  no_batching.max_batch = 1;
  no_batching.max_linger = std::chrono::microseconds(0);
  run_stress(no_batching, 1);

  ServiceOptions aggressive;
  aggressive.workers = 2;
  aggressive.max_batch = 64;
  aggressive.max_linger = std::chrono::microseconds(2000);
  run_stress(aggressive, 4);

  ServiceOptions tiny_batches;
  tiny_batches.workers = 4;
  tiny_batches.max_batch = 3;
  tiny_batches.max_linger = std::chrono::microseconds(50);
  run_stress(tiny_batches, 8);

  ServiceOptions parallel_fanout;
  parallel_fanout.workers = 2;
  parallel_fanout.max_batch = 32;
  parallel_fanout.batch_threads = 4;
  run_stress(parallel_fanout, 8);
}

TEST_F(DiagnosisServiceTest, BackpressureQueueStillCorrect) {
  ServiceOptions options;
  options.queue_capacity = 4;  // far fewer slots than requests
  options.workers = 2;
  options.max_batch = 4;
  run_stress(options, 8);
}

TEST_F(DiagnosisServiceTest, MeasuredResponsesMatchObserveThenDiagnose) {
  DiagnosisService service;
  service.add_session("paper", *session_);

  const auto& entry = session_->dictionary()->entries().front();
  const mna::AcResponse measured = session_->measure(entry.fault, 3);

  DiagnosisRequest request;
  request.circuit = "paper";
  request.points.push_back((*points_)[0]);
  request.measured.push_back(measured);
  const DiagnosisReply reply = service.diagnose(std::move(request));

  ASSERT_EQ(reply.results.size(), 2u);
  expect_same(reply.results[0], (*serial_)[0]);
  expect_same(reply.results[1],
              session_->diagnose(session_->observe(measured)));
}

TEST_F(DiagnosisServiceTest, LoneSessionServesTheEmptyCircuitKey) {
  DiagnosisService service;
  service.add_session("paper", *session_);
  DiagnosisRequest request;
  request.points.push_back((*points_)[0]);
  expect_same(service.diagnose(std::move(request)).results.front(),
              (*serial_)[0]);
}

TEST_F(DiagnosisServiceTest, UnknownCircuitFailsTheFuture) {
  DiagnosisService service;
  service.add_session("paper", *session_);
  DiagnosisRequest request;
  request.circuit = "not_registered";
  request.points.push_back((*points_)[0]);
  auto future = service.submit(std::move(request));
  EXPECT_THROW((void)future.get(), ConfigError);
}

TEST_F(DiagnosisServiceTest, SessionWithoutVectorFailsTheFuture) {
  DiagnosisService service;
  service.add_session("bare", SessionBuilder(small_cut(24))
                                  .deviations(coarse_spec())
                                  .build());
  DiagnosisRequest request;
  request.circuit = "bare";
  request.points.push_back((*points_)[0]);
  auto future = service.submit(std::move(request));
  EXPECT_THROW((void)future.get(), ConfigError);
}

TEST_F(DiagnosisServiceTest, EmptyRequestRejectedAtSubmit) {
  DiagnosisService service;
  service.add_session("paper", *session_);
  EXPECT_THROW((void)service.submit({}), ConfigError);
}

TEST_F(DiagnosisServiceTest, ShutdownDrainsThenRefuses) {
  DiagnosisService service;
  service.add_session("paper", *session_);

  std::vector<std::future<DiagnosisReply>> futures;
  for (std::size_t i = 0; i < 16; ++i) {
    DiagnosisRequest request;
    request.circuit = "paper";
    request.points.push_back((*points_)[i]);
    futures.push_back(service.submit(std::move(request)));
  }
  service.shutdown();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_same(futures[i].get().results.front(), (*serial_)[i]);
  }
  DiagnosisRequest late;
  late.circuit = "paper";
  late.points.push_back((*points_)[0]);
  EXPECT_THROW((void)service.submit(std::move(late)), ConfigError);
  service.shutdown();  // idempotent
}

TEST_F(DiagnosisServiceTest, ParallelDiagnoseBatchMatchesSerial) {
  // The service's inner fan-out, exercised directly on the facade.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto batched = session_->diagnose_batch(*points_, threads);
    ASSERT_EQ(batched.size(), serial_->size());
    for (std::size_t i = 0; i < batched.size(); ++i) {
      expect_same(batched[i], (*serial_)[i]);
    }
  }
}

}  // namespace
}  // namespace ftdiag::service
