#include "mna/response.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace ftdiag::mna {
namespace {

AcResponse first_order_lowpass(double fc, std::size_t points = 100) {
  std::vector<double> freqs;
  std::vector<Complex> values;
  for (std::size_t i = 0; i < points; ++i) {
    const double f =
        std::pow(10.0, 1.0 + 4.0 * static_cast<double>(i) / (points - 1));
    freqs.push_back(f);
    values.push_back(1.0 / Complex(1.0, f / fc));
  }
  return AcResponse(std::move(freqs), std::move(values));
}

TEST(Response, BasicAccessors) {
  const AcResponse r({1.0, 2.0}, {Complex(1, 0), Complex(0, -1)});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r.frequency(1), 2.0);
  EXPECT_DOUBLE_EQ(r.magnitude(0), 1.0);
  EXPECT_DOUBLE_EQ(r.magnitude_db(0), 0.0);
  EXPECT_DOUBLE_EQ(r.phase_deg(1), -90.0);
}

TEST(Response, MismatchedLengthsRejected) {
  EXPECT_DEATH(AcResponse({1.0, 2.0}, {Complex(1, 0)}), "length");
}

TEST(Response, UnsortedFrequenciesRejected) {
  EXPECT_DEATH(AcResponse({2.0, 1.0}, {Complex(1, 0), Complex(1, 0)}),
               "ascend");
}

TEST(Interpolate, ExactAtGridPoints) {
  const auto r = first_order_lowpass(1e3);
  for (std::size_t i = 0; i < r.size(); i += 7) {
    const Complex direct = r.value(i);
    const Complex interp = r.interpolate(r.frequency(i));
    EXPECT_NEAR(std::abs(direct - interp), 0.0, 1e-12);
  }
}

TEST(Interpolate, AccurateBetweenPoints) {
  const auto r = first_order_lowpass(1e3);
  for (double f : {37.0, 312.0, 1234.5, 23456.0}) {
    const Complex expected = 1.0 / Complex(1.0, f / 1e3);
    const Complex got = r.interpolate(f);
    EXPECT_NEAR(std::abs(got - expected), 0.0, 2e-3 * std::abs(expected));
  }
}

TEST(Interpolate, ClampsOutsideGrid) {
  const auto r = first_order_lowpass(1e3);
  EXPECT_EQ(r.interpolate(1.0), r.value(0));
  EXPECT_EQ(r.interpolate(1e9), r.value(r.size() - 1));
}

TEST(Interpolate, EmptyResponseThrows) {
  const AcResponse r;
  EXPECT_THROW((void)r.interpolate(1.0), NumericError);
}

TEST(Interpolate, MagnitudeHelpers) {
  const auto r = first_order_lowpass(1e3);
  EXPECT_NEAR(r.magnitude_at(1e3), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(r.magnitude_db_at(1e3), -3.0103, 2e-2);
}

TEST(Response, MaxDeviation) {
  const AcResponse a({1.0, 2.0}, {Complex(1, 0), Complex(1, 0)});
  const AcResponse b({1.0, 2.0}, {Complex(1, 0), Complex(0.5, 0)});
  EXPECT_DOUBLE_EQ(a.max_deviation(b), 0.5);
}

TEST(Response, MaxDeviationRequiresSameGrid) {
  const AcResponse a({1.0, 2.0}, {Complex(1, 0), Complex(1, 0)});
  const AcResponse b({1.0, 3.0}, {Complex(1, 0), Complex(1, 0)});
  EXPECT_THROW((void)a.max_deviation(b), NumericError);
}

TEST(Response, PeakIndex) {
  const AcResponse r({1.0, 2.0, 3.0},
                     {Complex(0.5, 0), Complex(2, 0), Complex(1, 0)});
  EXPECT_EQ(r.peak_index(), 1u);
}

TEST(Interpolate, PhaseShortestArc) {
  // Phase wrapping near +/-180 must interpolate through the short arc.
  const AcResponse r({1.0, 2.0},
                     {std::polar(1.0, 3.0), std::polar(1.0, -3.0)});
  const Complex mid = r.interpolate(std::sqrt(2.0));
  // Short arc from +3 rad to -3 rad passes through pi, not 0.
  EXPECT_GT(std::fabs(std::arg(mid)), 3.0);
}

}  // namespace
}  // namespace ftdiag::mna
