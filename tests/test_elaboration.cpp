#include <gtest/gtest.h>

#include <cmath>

#include "mna/ac_analysis.hpp"
#include "netlist/circuit.hpp"

namespace ftdiag::netlist {
namespace {

/// Non-inverting unity buffer built from a macro op-amp.
Circuit make_buffer(const OpAmpModel& model) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_opamp("OA1", "in", "out", "out", model);
  c.add_resistor("RL", "out", "0", 10e3);
  return c;
}

TEST(Elaboration, NoOpWithoutMacroOpAmps) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "0", 1e3);
  EXPECT_FALSE(c.has_macro_opamps());
  const Circuit e = c.elaborated();
  EXPECT_EQ(e.component_count(), c.component_count());
}

TEST(Elaboration, ExpandsIntoPrimitives) {
  const Circuit c = make_buffer({});
  EXPECT_TRUE(c.has_macro_opamps());
  const Circuit e = c.elaborated();
  EXPECT_FALSE(e.has_macro_opamps());
  EXPECT_TRUE(e.has_component("OA1:rin"));
  EXPECT_TRUE(e.has_component("OA1:gm"));
  EXPECT_TRUE(e.has_component("OA1:rp"));
  EXPECT_TRUE(e.has_component("OA1:cp"));
  EXPECT_TRUE(e.has_component("OA1:buffer"));
  EXPECT_TRUE(e.has_component("OA1:rout"));
  EXPECT_TRUE(e.has_node("oa1:pole"));  // node names are lower-cased
}

TEST(Elaboration, PreservesOtherComponents) {
  const Circuit e = make_buffer({}).elaborated();
  EXPECT_TRUE(e.has_component("V1"));
  EXPECT_TRUE(e.has_component("RL"));
  EXPECT_DOUBLE_EQ(e.value_of("RL"), 10e3);
}

TEST(Elaboration, BufferHasUnityGainAtLowFrequency) {
  mna::AcAnalysis analysis(make_buffer({}));
  const auto h = analysis.node_voltage(10.0, "out");
  EXPECT_NEAR(std::abs(h), 1.0, 1e-3);
}

TEST(Elaboration, OpenLoopDcGainMatchesModel) {
  // Open-loop: drive in+, ground in-, observe out unloaded (big R).
  OpAmpModel model;
  model.dc_gain = 12345.0;
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_opamp("OA1", "in", "0", "out", model);
  c.add_resistor("RL", "out", "0", 1e9);
  mna::AcAnalysis analysis(c);
  const auto h = analysis.node_voltage(1e-3, "out");
  EXPECT_NEAR(std::abs(h), 12345.0, 12345.0 * 1e-3);
}

TEST(Elaboration, OpenLoopPoleRollsOffAtGbw) {
  OpAmpModel model;
  model.dc_gain = 1e5;
  model.gbw_hz = 1e6;
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_opamp("OA1", "in", "0", "out", model);
  c.add_resistor("RL", "out", "0", 1e9);
  mna::AcAnalysis analysis(c);
  // |A(f)| ~ GBW / f well above the pole.
  const auto h = analysis.node_voltage(1e5, "out");
  EXPECT_NEAR(std::abs(h), 10.0, 0.5);
}

TEST(Elaboration, BufferBandwidthTracksGbw) {
  // A unity buffer's -3 dB bandwidth approximates the GBW.
  OpAmpModel model;
  model.dc_gain = 1e5;
  model.gbw_hz = 1e6;
  mna::AcAnalysis analysis(make_buffer(model));
  const double mag_at_gbw =
      std::abs(analysis.node_voltage(model.gbw_hz, "out"));
  EXPECT_NEAR(mag_at_gbw, 1.0 / std::sqrt(2.0), 0.05);
}

TEST(Elaboration, RinLoadsTheSource) {
  OpAmpModel model;
  model.rin = 1e3;  // deliberately low
  Circuit c;
  c.add_vsource("V1", "src", "0", 0.0, 1.0);
  c.add_resistor("RS", "src", "in", 1e3);
  c.add_opamp("OA1", "in", "0", "out", model);
  c.add_resistor("RL", "out", "0", 1e6);
  mna::AcAnalysis analysis(c);
  // in+ sees a 1k/1k divider through Rin to the grounded in-.
  const auto vin_plus = analysis.node_voltage(1.0, "in");
  EXPECT_NEAR(std::abs(vin_plus), 0.5, 0.01);
}

TEST(Elaboration, ZeroRoutHandledWithTinySeries) {
  OpAmpModel model;
  model.rout = 0.0;
  const Circuit e = make_buffer(model).elaborated();
  EXPECT_TRUE(e.has_component("OA1:rout"));
  EXPECT_GT(e.value_of("OA1:rout"), 0.0);
  EXPECT_NO_THROW(mna::AcAnalysis{e});
}

}  // namespace
}  // namespace ftdiag::netlist
