#include <gtest/gtest.h>

#include "circuits/nf_biquad.hpp"
#include "faults/fault.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_simulator.hpp"
#include "faults/fault_universe.hpp"
#include "util/error.hpp"

namespace ftdiag::faults {
namespace {

TEST(Fault, Labels) {
  const ParametricFault f1{FaultSite::value_of("R3"), 0.30};
  EXPECT_EQ(f1.label(), "R3+30%");
  const ParametricFault f2{FaultSite::value_of("C1"), -0.10};
  EXPECT_EQ(f2.label(), "C1-10%");
  const ParametricFault f3{
      FaultSite::opamp_param_of("OA1", netlist::OpAmpParam::kGbw), 0.20};
  EXPECT_EQ(f3.label(), "OA1.gbw+20%");
}

TEST(Fault, MultiplierAndNominal) {
  const ParametricFault f{FaultSite::value_of("R1"), -0.40};
  EXPECT_DOUBLE_EQ(f.multiplier(), 0.60);
  EXPECT_FALSE(f.is_nominal());
  const ParametricFault nominal{FaultSite::value_of("R1"), 0.0};
  EXPECT_TRUE(nominal.is_nominal());
}

TEST(DeviationSpec, PaperGridHasEightSteps) {
  const auto devs = DeviationSpec::paper().deviations();
  ASSERT_EQ(devs.size(), 8u);  // -40..-10, +10..+40
  EXPECT_DOUBLE_EQ(devs.front(), -0.40);
  EXPECT_DOUBLE_EQ(devs.back(), 0.40);
  for (double d : devs) EXPECT_NE(d, 0.0);
}

TEST(DeviationSpec, IncludeNominalAddsZero) {
  DeviationSpec spec;
  spec.include_nominal = true;
  const auto devs = spec.deviations();
  EXPECT_EQ(devs.size(), 9u);
  EXPECT_DOUBLE_EQ(devs[4], 0.0);
}

TEST(DeviationSpec, GridValuesAreExact) {
  const auto devs = DeviationSpec::paper().deviations();
  EXPECT_DOUBLE_EQ(devs[1], -0.30);  // no 0.30000000000000004 artifacts
  EXPECT_DOUBLE_EQ(devs[5], 0.20);
}

TEST(DeviationSpec, InvalidSpecsThrow) {
  DeviationSpec bad_step;
  bad_step.step_fraction = 0.0;
  EXPECT_THROW(bad_step.deviations(), ConfigError);

  DeviationSpec inverted;
  inverted.min_fraction = 0.4;
  inverted.max_fraction = -0.4;
  EXPECT_THROW(inverted.deviations(), ConfigError);

  DeviationSpec beyond_short;
  beyond_short.min_fraction = -1.0;
  EXPECT_THROW(beyond_short.deviations(), ConfigError);
}

TEST(Universe, OverTestableEnumeratesSitesTimesDeviations) {
  const auto cut = circuits::make_paper_cut();
  const auto universe = FaultUniverse::over_testable(cut);
  EXPECT_EQ(universe.sites().size(), 7u);
  EXPECT_EQ(universe.fault_count(), 56u);
  const auto faults = universe.enumerate();
  ASSERT_EQ(faults.size(), 56u);
  // Grouped by site, deviations ascending within a group.
  EXPECT_EQ(faults[0].site.label(), "Ra");
  EXPECT_DOUBLE_EQ(faults[0].deviation, -0.40);
  EXPECT_EQ(faults[8].site.label(), "Rb");
}

TEST(Universe, OpAmpParamsNeedMacroModels) {
  const auto ideal_cut = circuits::make_paper_cut();
  EXPECT_THROW(FaultUniverse::over_opamp_params(ideal_cut), ConfigError);

  circuits::NfBiquadDesign macro_design;
  macro_design.ideal_opamps = false;
  const auto macro_cut = circuits::make_nf_biquad(macro_design);
  const auto universe = FaultUniverse::over_opamp_params(macro_cut);
  EXPECT_EQ(universe.sites().size(), 4u);  // one op-amp, four params
  EXPECT_EQ(universe.sites()[0].label(), "OA1.ad0");
}

TEST(Injector, ScalesComponentValue) {
  const auto cut = circuits::make_paper_cut();
  const double nominal = cut.circuit.value_of("R2");
  const auto faulty =
      inject(cut.circuit, {FaultSite::value_of("R2"), 0.30});
  EXPECT_NEAR(faulty.value_of("R2"), nominal * 1.30, 1e-9);
  // Original untouched (value semantics).
  EXPECT_DOUBLE_EQ(cut.circuit.value_of("R2"), nominal);
}

TEST(Injector, ScalesOpAmpParameter) {
  circuits::NfBiquadDesign design;
  design.ideal_opamps = false;
  const auto cut = circuits::make_nf_biquad(design);
  const double nominal =
      cut.circuit.opamp_param("OA1", netlist::OpAmpParam::kGbw);
  const auto faulty = inject(
      cut.circuit,
      {FaultSite::opamp_param_of("OA1", netlist::OpAmpParam::kGbw), -0.20});
  EXPECT_NEAR(faulty.opamp_param("OA1", netlist::OpAmpParam::kGbw),
              nominal * 0.80, 1e-6);
}

TEST(Injector, UnknownSiteThrows) {
  const auto cut = circuits::make_paper_cut();
  EXPECT_THROW(inject(cut.circuit, {FaultSite::value_of("R99"), 0.1}),
               CircuitError);
}

TEST(Injector, MultiFault) {
  const auto cut = circuits::make_paper_cut();
  const auto faulty = inject_all(
      cut.circuit, {{FaultSite::value_of("R2"), 0.10},
                    {FaultSite::value_of("C1"), -0.10}});
  EXPECT_NEAR(faulty.value_of("R2"), cut.circuit.value_of("R2") * 1.1, 1e-9);
  EXPECT_NEAR(faulty.value_of("C1"), cut.circuit.value_of("C1") * 0.9, 1e-18);
}

TEST(Simulator, GoldenMatchesDirectAnalysis) {
  const auto cut = circuits::make_paper_cut();
  const FaultSimulator sim(cut);
  const auto golden = sim.golden({100.0, 1000.0});
  EXPECT_EQ(golden.size(), 2u);
  EXPECT_NEAR(golden.magnitude(0), 1.0, 1e-3);
}

TEST(Simulator, FaultyResponseDiffersFromGolden) {
  const auto cut = circuits::make_paper_cut();
  const FaultSimulator sim(cut);
  const std::vector<double> freqs = {100.0, 1000.0, 5000.0};
  const auto golden = sim.golden(freqs);
  const auto faulty = sim.simulate({FaultSite::value_of("C1"), 0.40}, freqs);
  EXPECT_GT(faulty.max_deviation(golden), 1e-4);
}

TEST(Simulator, NoiseZeroSigmaIsIdentity) {
  const auto cut = circuits::make_paper_cut();
  const FaultSimulator sim(cut);
  const std::vector<double> freqs = {1000.0};
  const auto clean = sim.simulate({FaultSite::value_of("R2"), 0.2}, freqs);
  const auto measured =
      sim.measure({FaultSite::value_of("R2"), 0.2}, freqs, {0.0, 1});
  EXPECT_DOUBLE_EQ(clean.magnitude(0), measured.magnitude(0));
}

TEST(Simulator, NoisePerturbsMagnitudeOnly) {
  const auto cut = circuits::make_paper_cut();
  const FaultSimulator sim(cut);
  const std::vector<double> freqs = {1000.0};
  const auto clean = sim.simulate({FaultSite::value_of("R2"), 0.2}, freqs);
  const auto noisy =
      sim.measure({FaultSite::value_of("R2"), 0.2}, freqs, {0.05, 99});
  EXPECT_NE(clean.magnitude(0), noisy.magnitude(0));
  // Phase preserved by multiplicative magnitude noise.
  EXPECT_NEAR(clean.phase_deg(0), noisy.phase_deg(0), 1e-9);
}

TEST(Simulator, NoiseIsDeterministicPerSeed) {
  const auto cut = circuits::make_paper_cut();
  const FaultSimulator sim(cut);
  const std::vector<double> freqs = {500.0, 2000.0};
  const auto a = sim.measure({FaultSite::value_of("C2"), 0.1}, freqs, {0.02, 7});
  const auto b = sim.measure({FaultSite::value_of("C2"), 0.1}, freqs, {0.02, 7});
  EXPECT_DOUBLE_EQ(a.magnitude(0), b.magnitude(0));
  EXPECT_DOUBLE_EQ(a.magnitude(1), b.magnitude(1));
}

}  // namespace
}  // namespace ftdiag::faults
