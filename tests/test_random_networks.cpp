/// Randomized-network property tests: generate random connected RC
/// networks and check physical invariants of the MNA engine that must hold
/// for ANY such network — properties no hand-written example can cover.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/dc_analysis.hpp"
#include "netlist/circuit.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ftdiag {
namespace {

/// Random connected RC network: a spine guarantees connectivity, extra
/// chords add meshes.  Driven by V1 at node n0, observed anywhere.
netlist::Circuit random_rc_network(Rng& rng, std::size_t nodes,
                                   std::size_t chords) {
  netlist::Circuit c;
  c.add_vsource("V1", "n0", "0", 0.0, 1.0);
  std::size_t part = 0;
  auto add_part = [&](const std::string& a, const std::string& b) {
    const std::string name = str::format("P%zu", part++);
    if (rng.bernoulli(0.7)) {
      c.add_resistor(name, a, b, rng.uniform(100.0, 100e3));
    } else {
      c.add_capacitor(name, a, b, rng.uniform(1e-10, 1e-6));
    }
  };
  // Spine: n0 - n1 - ... - n{N-1}, with a resistor to keep DC defined.
  for (std::size_t i = 1; i < nodes; ++i) {
    const std::string prev = str::format("n%zu", i - 1);
    const std::string here = str::format("n%zu", i);
    c.add_resistor(str::format("RS%zu", i), prev, here,
                   rng.uniform(100.0, 50e3));
  }
  c.add_resistor("RL", str::format("n%zu", nodes - 1), "0",
                 rng.uniform(1e3, 100e3));
  // Chords between random nodes (including ground).
  for (std::size_t k = 0; k < chords; ++k) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    const std::string node_a = str::format("n%zu", a);
    const std::string node_b = rng.bernoulli(0.25) ? "0" : str::format("n%zu", b);
    if (node_a == node_b) continue;
    add_part(node_a, node_b);
  }
  return c;
}

class RandomRcNetworkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomRcNetworkTest, PassiveGainNeverExceedsUnity) {
  // An RC network (no inductors) cannot resonate: |H| <= 1 everywhere.
  Rng rng(GetParam());
  const auto circuit = random_rc_network(rng, 8, 10);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  mna::AcAnalysis analysis(circuit);
  for (double f : {1.0, 100.0, 10e3, 1e6}) {
    for (std::size_t n = 1; n < 8; ++n) {
      const double mag =
          std::abs(analysis.node_voltage(f, str::format("n%zu", n)));
      EXPECT_LE(mag, 1.0 + 1e-9)
          << "node n" << n << " at " << f << " Hz";
    }
  }
}

TEST_P(RandomRcNetworkTest, DcLimitMatchesDcAnalysis) {
  // AC at a vanishing frequency must agree with the dedicated DC solve
  // (with the AC magnitude as the DC excitation).
  Rng rng(GetParam() + 1000);
  netlist::Circuit circuit = random_rc_network(rng, 6, 6);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  mna::AcAnalysis ac(circuit);

  netlist::Circuit dc_circuit = circuit;
  // Same excitation as DC value (fresh circuit, V1 dc=1).
  netlist::Circuit rebuilt;
  for (const auto& comp : dc_circuit.components()) {
    netlist::Component copy = comp;
    if (comp.name == "V1") copy.dc = 1.0;
    copy.nodes.clear();
    for (auto n : comp.nodes) {
      copy.nodes.push_back(rebuilt.node(dc_circuit.node_name(n)));
    }
    rebuilt.add_component(copy);
  }
  mna::DcAnalysis dc(rebuilt);
  const auto dc_solution = dc.solve();
  for (std::size_t n = 1; n < 6; ++n) {
    const std::string name = str::format("n%zu", n);
    const auto v_ac = ac.node_voltage(1e-6, name);
    const double v_dc = dc_solution[dc.system().node_unknown(name)];
    EXPECT_NEAR(v_ac.real(), v_dc, 1e-6) << name;
    EXPECT_NEAR(v_ac.imag(), 0.0, 1e-6) << name;
  }
}

TEST_P(RandomRcNetworkTest, SparseAndDenseSolversAgree) {
  Rng rng(GetParam() + 2000);
  const auto circuit = random_rc_network(rng, 10, 12);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  const mna::MnaSystem system(circuit);
  const std::size_t n = system.unknown_count();
  linalg::CooMatrix<mna::Complex> matrix(n, n);
  std::vector<mna::Complex> rhs(n, mna::Complex{});
  system.assemble_ac(linalg::s_of_hz(1234.5), matrix, rhs);

  const auto dense = linalg::LuFactorization<mna::Complex>(matrix.to_dense())
                         .solve(rhs);
  const auto sparse = linalg::SparseLu<mna::Complex>(matrix).solve(rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(dense[i] - sparse[i]), 0.0, 1e-8);
  }
}

TEST_P(RandomRcNetworkTest, MagnitudeIsContinuousInFrequency) {
  // No jumps: neighbouring frequencies give neighbouring responses.
  Rng rng(GetParam() + 3000);
  const auto circuit = random_rc_network(rng, 7, 8);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  mna::AcAnalysis analysis(circuit);
  const auto response = analysis.sweep(
      mna::FrequencyGrid::log_sweep(10.0, 1e6, 200), "n6");
  for (std::size_t i = 1; i < response.size(); ++i) {
    EXPECT_LT(std::fabs(response.magnitude(i) - response.magnitude(i - 1)),
              0.15)
        << "jump at " << response.frequency(i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRcNetworkTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ftdiag
