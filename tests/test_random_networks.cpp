/// Randomized-network property tests: generate random connected RC
/// networks and check physical invariants of the MNA engine that must hold
/// for ANY such network — properties no hand-written example can cover.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/ladders.hpp"
#include "faults/fault_universe.hpp"
#include "faults/simulation_engine.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_factorization.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/dc_analysis.hpp"
#include "netlist/circuit.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ftdiag {
namespace {

/// Random connected RC network: a spine guarantees connectivity, extra
/// chords add meshes.  Driven by V1 at node n0, observed anywhere.
netlist::Circuit random_rc_network(Rng& rng, std::size_t nodes,
                                   std::size_t chords) {
  netlist::Circuit c;
  c.add_vsource("V1", "n0", "0", 0.0, 1.0);
  std::size_t part = 0;
  auto add_part = [&](const std::string& a, const std::string& b) {
    const std::string name = str::format("P%zu", part++);
    if (rng.bernoulli(0.7)) {
      c.add_resistor(name, a, b, rng.uniform(100.0, 100e3));
    } else {
      c.add_capacitor(name, a, b, rng.uniform(1e-10, 1e-6));
    }
  };
  // Spine: n0 - n1 - ... - n{N-1}, with a resistor to keep DC defined.
  for (std::size_t i = 1; i < nodes; ++i) {
    const std::string prev = str::format("n%zu", i - 1);
    const std::string here = str::format("n%zu", i);
    c.add_resistor(str::format("RS%zu", i), prev, here,
                   rng.uniform(100.0, 50e3));
  }
  c.add_resistor("RL", str::format("n%zu", nodes - 1), "0",
                 rng.uniform(1e3, 100e3));
  // Chords between random nodes (including ground).
  for (std::size_t k = 0; k < chords; ++k) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
    const std::string node_a = str::format("n%zu", a);
    const std::string node_b = rng.bernoulli(0.25) ? "0" : str::format("n%zu", b);
    if (node_a == node_b) continue;
    add_part(node_a, node_b);
  }
  return c;
}

class RandomRcNetworkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomRcNetworkTest, PassiveGainNeverExceedsUnity) {
  // An RC network (no inductors) cannot resonate: |H| <= 1 everywhere.
  Rng rng(GetParam());
  const auto circuit = random_rc_network(rng, 8, 10);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  mna::AcAnalysis analysis(circuit);
  for (double f : {1.0, 100.0, 10e3, 1e6}) {
    for (std::size_t n = 1; n < 8; ++n) {
      const double mag =
          std::abs(analysis.node_voltage(f, str::format("n%zu", n)));
      EXPECT_LE(mag, 1.0 + 1e-9)
          << "node n" << n << " at " << f << " Hz";
    }
  }
}

TEST_P(RandomRcNetworkTest, DcLimitMatchesDcAnalysis) {
  // AC at a vanishing frequency must agree with the dedicated DC solve
  // (with the AC magnitude as the DC excitation).
  Rng rng(GetParam() + 1000);
  netlist::Circuit circuit = random_rc_network(rng, 6, 6);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  mna::AcAnalysis ac(circuit);

  netlist::Circuit dc_circuit = circuit;
  // Same excitation as DC value (fresh circuit, V1 dc=1).
  netlist::Circuit rebuilt;
  for (const auto& comp : dc_circuit.components()) {
    netlist::Component copy = comp;
    if (comp.name == "V1") copy.dc = 1.0;
    copy.nodes.clear();
    for (auto n : comp.nodes) {
      copy.nodes.push_back(rebuilt.node(dc_circuit.node_name(n)));
    }
    rebuilt.add_component(copy);
  }
  mna::DcAnalysis dc(rebuilt);
  const auto dc_solution = dc.solve();
  for (std::size_t n = 1; n < 6; ++n) {
    const std::string name = str::format("n%zu", n);
    const auto v_ac = ac.node_voltage(1e-6, name);
    const double v_dc = dc_solution[dc.system().node_unknown(name)];
    EXPECT_NEAR(v_ac.real(), v_dc, 1e-6) << name;
    EXPECT_NEAR(v_ac.imag(), 0.0, 1e-6) << name;
  }
}

TEST_P(RandomRcNetworkTest, SparseAndDenseSolversAgree) {
  Rng rng(GetParam() + 2000);
  const auto circuit = random_rc_network(rng, 10, 12);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  const mna::MnaSystem system(circuit);
  const std::size_t n = system.unknown_count();
  linalg::CooMatrix<mna::Complex> matrix(n, n);
  std::vector<mna::Complex> rhs(n, mna::Complex{});
  system.assemble_ac(linalg::s_of_hz(1234.5), matrix, rhs);

  const auto dense = linalg::LuFactorization<mna::Complex>(matrix.to_dense())
                         .solve(rhs);
  const auto sparse = linalg::SparseLu<mna::Complex>(matrix).solve(rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(dense[i] - sparse[i]), 0.0, 1e-8);
  }
}

TEST_P(RandomRcNetworkTest, MagnitudeIsContinuousInFrequency) {
  // No jumps: neighbouring frequencies give neighbouring responses.
  Rng rng(GetParam() + 3000);
  const auto circuit = random_rc_network(rng, 7, 8);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  mna::AcAnalysis analysis(circuit);
  const auto response = analysis.sweep(
      mna::FrequencyGrid::log_sweep(10.0, 1e6, 200), "n6");
  for (std::size_t i = 1; i < response.size(); ++i) {
    EXPECT_LT(std::fabs(response.magnitude(i) - response.magnitude(i - 1)),
              0.15)
        << "jump at " << response.frequency(i);
  }
}

TEST_P(RandomRcNetworkTest, SparseFactorizationRefactorsAcrossFrequencies) {
  // Analyze the MNA pattern once at one frequency, refactor at others and
  // match the dense solution at each — the symbolic/numeric contract on a
  // random complex system.
  Rng rng(GetParam() + 4000);
  const auto circuit = random_rc_network(rng, 12, 15);
  if (!circuit.validate().empty()) GTEST_SKIP() << "degenerate draw";
  const mna::MnaSystem system(circuit);
  const std::size_t n = system.unknown_count();

  auto assemble = [&](double f) {
    linalg::CooMatrix<mna::Complex> coo(n, n);
    std::vector<mna::Complex> rhs(n, mna::Complex{});
    system.assemble_ac(linalg::s_of_hz(f), coo, rhs);
    return std::make_pair(std::move(coo), std::move(rhs));
  };

  auto [first, rhs] = assemble(1e3);
  (void)rhs;
  linalg::SparseFactorization<mna::Complex> f(first);
  for (double hz : {1.0, 250.0, 1e3, 47e3, 1e6}) {
    const auto [coo, rhs_f] = assemble(hz);
    f.refactor(coo);
    const auto xs = f.solve(rhs_f);
    const auto xd =
        linalg::LuFactorization<mna::Complex>(coo.to_dense()).solve(rhs_f);
    double scale = 0.0;
    for (const auto& v : xd) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::abs(xs[i] - xd[i]), 1e-9 * (std::abs(xd[i]) + scale))
          << "unknown " << i << " at " << hz << " Hz";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRcNetworkTest,
                         ::testing::Range<std::uint64_t>(1, 13));

/// Ladder differential at scale: sparse pattern-reuse path vs the dense
/// reference on a 1000-section RC ladder (1002 unknowns), rel tol 1e-9.
TEST(LargeLadder, SparseFactorizationMatchesDenseAt1000Nodes) {
  circuits::RcLadderDesign design;
  design.sections = 1000;
  design.testable_stride = 250;
  const auto cut = circuits::make_rc_ladder(design);
  const mna::MnaSystem system(cut.circuit);
  const auto assembler = system.prepare_sweep();
  const std::size_t n = assembler.size();
  ASSERT_GT(n, mna::SweepAssembler::kDenseLimit);

  linalg::CooMatrix<mna::Complex> coo(n, n);
  assembler.assemble(linalg::s_of_hz(mna::SweepSolver::kReferenceHz), coo);
  linalg::SparseFactorization<mna::Complex> f(coo);

  const double f_section = std::sqrt(cut.band_low_hz * cut.band_high_hz);
  assembler.assemble(linalg::s_of_hz(f_section), coo);
  f.refactor(coo);
  const auto xs = f.solve(assembler.rhs());
  const auto xd = linalg::LuFactorization<mna::Complex>(coo.to_dense())
                      .solve(assembler.rhs());
  double scale = 0.0;
  for (const auto& v : xd) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LE(std::abs(xs[i] - xd[i]), 1e-9 * (std::abs(xd[i]) + scale))
        << "unknown " << i;
  }
}

/// Medium random network through the full AC path: the auto-selected
/// sparse sweep must match a forced-dense sweep point for point.
TEST(LargeLadder, RandomNetworkAutoSparseMatchesForcedDense) {
  circuits::RandomNetworkDesign design;
  design.nodes = 300;  // past kDenseLimit -> auto picks sparse
  design.chords = 450;
  design.testable_stride = 100;
  const auto cut = circuits::make_random_network(design);
  mna::AcAnalysis analysis(cut.circuit);
  ASSERT_GT(analysis.system().unknown_count(), mna::AcAnalysis::kDenseLimit);
  ASSERT_TRUE(analysis.solver_context()->sparse);

  const auto dense_context = mna::SweepSolver::analyze(
      analysis.sweep_assembler(), mna::SolverBackend::kDense);
  mna::SweepSolver dense(analysis.sweep_assembler(), dense_context);
  const std::size_t n = analysis.system().unknown_count();
  std::vector<mna::Complex> xd(n);
  for (double hz : {10.0, 1e3, 1e5}) {
    const auto xs = analysis.solve(hz);
    dense.factor(linalg::s_of_hz(hz));
    dense.solve_into(analysis.sweep_assembler().rhs(), xd);
    double scale = 0.0;
    for (const auto& v : xd) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::abs(xs[i] - xd[i]), 1e-9 * (std::abs(xd[i]) + scale))
          << "unknown " << i << " at " << hz << " Hz";
    }
  }
}

/// Sparse-built dictionaries must stay bit-identical across thread counts
/// — slot-ordered writes plus a call-history-independent symbolic phase.
TEST(LargeLadder, SparseEngineBatchIsBitStableAcrossThreadCounts) {
  circuits::RcLadderDesign design;
  design.sections = 400;  // 402 unknowns -> sparse reuse path
  design.testable_stride = 100;
  const auto cut = circuits::make_rc_ladder(design);
  const auto freqs =
      mna::FrequencyGrid::log_sweep(cut.band_low_hz, cut.band_high_hz, 16)
          .frequencies();
  const auto faults = faults::FaultUniverse::over_testable(cut).enumerate();

  faults::SimOptions one;
  one.threads = 1;
  const faults::BatchResult single =
      faults::SimulationEngine(cut, one).simulate_all(faults, freqs);
  EXPECT_GT(single.stats.rank1_solves, 0u);
  EXPECT_EQ(single.stats.fallback_faults, 0u);

  for (std::size_t threads : {2u, 8u}) {
    faults::SimOptions options;
    options.threads = threads;
    const faults::BatchResult batch =
        faults::SimulationEngine(cut, options).simulate_all(faults, freqs);
    ASSERT_EQ(batch.responses.size(), single.responses.size());
    for (std::size_t i = 0; i < single.responses.size(); ++i) {
      for (std::size_t k = 0; k < single.responses[i].size(); ++k) {
        EXPECT_EQ(batch.responses[i].value(k).real(),
                  single.responses[i].value(k).real())
            << "fault " << i << " point " << k << " threads " << threads;
        EXPECT_EQ(batch.responses[i].value(k).imag(),
                  single.responses[i].value(k).imag())
            << "fault " << i << " point " << k << " threads " << threads;
      }
    }
    EXPECT_EQ(batch.stats.rank1_solves, single.stats.rank1_solves);
    EXPECT_EQ(batch.stats.full_solves, single.stats.full_solves);
  }
}

}  // namespace
}  // namespace ftdiag
