#include "core/multipoint.hpp"

#include <gtest/gtest.h>

#include "circuits/tow_thomas.hpp"
#include "faults/fault_injector.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

class MultiPointTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cut_ = new circuits::CircuitUnderTest(circuits::make_tow_thomas());
    universe_ = new faults::FaultUniverse(
        faults::FaultUniverse::over_testable(*cut_));
    dual_ = new MultiPointEvaluator(*cut_, *universe_, {"lp", "inv"});
  }
  static void TearDownTestSuite() {
    delete dual_;
    delete universe_;
    delete cut_;
    dual_ = nullptr;
    universe_ = nullptr;
    cut_ = nullptr;
  }
  static circuits::CircuitUnderTest* cut_;
  static faults::FaultUniverse* universe_;
  static MultiPointEvaluator* dual_;

  static constexpr double kF1 = 700.0;
  static constexpr double kF2 = 1600.0;
};

circuits::CircuitUnderTest* MultiPointTest::cut_ = nullptr;
faults::FaultUniverse* MultiPointTest::universe_ = nullptr;
MultiPointEvaluator* MultiPointTest::dual_ = nullptr;

TEST_F(MultiPointTest, BuildsOneDictionaryPerNode) {
  EXPECT_EQ(dual_->dictionaries().size(), 2u);
  EXPECT_EQ(dual_->nodes(), (std::vector<std::string>{"lp", "inv"}));
  for (const auto& dict : dual_->dictionaries()) {
    EXPECT_EQ(dict.fault_count(), 56u);
  }
}

TEST_F(MultiPointTest, DimensionIsNodesTimesFrequencies) {
  EXPECT_EQ(dual_->dimension(2), 4u);
  EXPECT_EQ(dual_->dimension(3), 6u);
}

TEST_F(MultiPointTest, TrajectoriesConcatenatePerNodeSignatures) {
  const auto trajectories = dual_->trajectories({{kF1, kF2}});
  EXPECT_EQ(trajectories.size(), 7u);
  for (const auto& t : trajectories) {
    EXPECT_EQ(t.dimension(), 4u);
    EXPECT_EQ(t.point_count(), 9u);
  }
}

TEST_F(MultiPointTest, SingleNodeMatchesPlainPipeline) {
  const MultiPointEvaluator single(*cut_, *universe_, {"lp"});
  const auto multi_trajs = single.trajectories({{kF1, kF2}});
  const auto plain_trajs = build_trajectories(
      single.dictionaries().front(), {kF1, kF2}, SamplingPolicy{});
  ASSERT_EQ(multi_trajs.size(), plain_trajs.size());
  for (std::size_t i = 0; i < multi_trajs.size(); ++i) {
    EXPECT_EQ(multi_trajs[i].site(), plain_trajs[i].site());
    for (std::size_t p = 0; p < multi_trajs[i].point_count(); ++p) {
      EXPECT_EQ(multi_trajs[i].points()[p].coords,
                plain_trajs[i].points()[p].coords);
    }
  }
}

TEST_F(MultiPointTest, SecondNodeSplitsTheRatioGroup) {
  // From lp alone, R4 and R6 are exactly ambiguous; the inverter output
  // sees k = R5/R4 directly and separates them.  R3=C2 stays merged at
  // every voltage node (only the product R3*C2 enters).
  const MultiPointEvaluator single(*cut_, *universe_, {"lp"});
  const auto single_groups = single.ambiguity_groups();
  const auto dual_groups = dual_->ambiguity_groups();
  EXPECT_TRUE(same_group(single_groups, "R4", "R6"));
  EXPECT_FALSE(same_group(dual_groups, "R4", "R6"));
  EXPECT_TRUE(same_group(dual_groups, "R3", "C2"));
  EXPECT_GT(dual_groups.size(), single_groups.size());
}

TEST_F(MultiPointTest, ObserveDiagnosesInjectedFaults) {
  const auto engine = dual_->make_engine({{kF1, kF2}});
  const auto groups = dual_->ambiguity_groups();
  for (const char* site : {"R1", "R2", "R4", "R6", "C1"}) {
    const faults::ParametricFault fault{faults::FaultSite::value_of(site),
                                        0.25};
    const auto board = faults::inject(cut_->circuit, fault);
    const auto observed = dual_->observe(board, {{kF1, kF2}});
    EXPECT_EQ(observed.size(), 4u);
    const auto diagnosis = engine.diagnose(observed);
    EXPECT_TRUE(same_group(groups, diagnosis.best().site, site))
        << site << " diagnosed as " << diagnosis.best().site;
  }
}

TEST_F(MultiPointTest, R4AndR6NowDistinguishable) {
  // The concrete payoff: +25% on R4 vs +25% on R6 produce different
  // diagnoses once the inverter node is observed.
  const auto engine = dual_->make_engine({{kF1, kF2}});
  const auto diag_r4 = engine.diagnose(dual_->observe(
      faults::inject(cut_->circuit,
                     {faults::FaultSite::value_of("R4"), 0.25}),
      {{kF1, kF2}}));
  const auto diag_r6 = engine.diagnose(dual_->observe(
      faults::inject(cut_->circuit,
                     {faults::FaultSite::value_of("R6"), 0.25}),
      {{kF1, kF2}}));
  EXPECT_EQ(diag_r4.best().site, "R4");
  EXPECT_EQ(diag_r6.best().site, "R6");
}

TEST_F(MultiPointTest, FitnessInUnitInterval) {
  const double fitness = dual_->fitness({{kF1, kF2}});
  EXPECT_GT(fitness, 0.0);
  EXPECT_LE(fitness, 1.0);
}

TEST_F(MultiPointTest, InvalidConstructionRejected) {
  EXPECT_THROW(MultiPointEvaluator(*cut_, *universe_, {}), ConfigError);
  EXPECT_THROW(MultiPointEvaluator(*cut_, *universe_, {"lp", "no_such_node"}),
               ConfigError);
}

TEST_F(MultiPointTest, EmptyTestVectorRejected) {
  EXPECT_THROW(dual_->trajectories({{}}), ConfigError);
}

}  // namespace
}  // namespace ftdiag::core
