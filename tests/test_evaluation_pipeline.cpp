/// Differential and determinism tests for the batch evaluation pipeline:
/// the pipeline must score exactly what the scalar evaluator scores at the
/// snapped frequencies, for any thread count and with the signature cache
/// on or off — and the whole GA search on top of it must be bit-identical
/// across thread counts.
#include "core/evaluation_pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/registry.hpp"
#include "core/fitness.hpp"
#include "core/trajectory.hpp"
#include "faults/dictionary.hpp"
#include "faults/fault_universe.hpp"
#include "ga/baselines.hpp"
#include "session.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag {
namespace {

const faults::FaultDictionary& paper_dictionary() {
  static const faults::FaultDictionary dictionary = [] {
    const auto cut = circuits::make_by_name("sallen_key_lp");
    return faults::FaultDictionary::build(
        cut, faults::FaultUniverse::over_testable(cut));
  }();
  return dictionary;
}

std::vector<std::vector<double>> random_genomes(std::size_t count,
                                                std::size_t dims,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> genomes(count);
  for (auto& g : genomes) {
    g.resize(dims);
    for (double& gene : g) gene = rng.uniform(1.3, 4.7);
  }
  return genomes;
}

TEST(EvaluationPipeline, MatchesScalarEvaluatorAtSnappedFrequencies) {
  const core::TestVectorEvaluator evaluator(paper_dictionary());
  core::PipelineOptions options;
  options.threads = 1;
  const core::EvaluationPipeline pipeline(evaluator, options);

  for (const auto& genome : random_genomes(24, 2, 11)) {
    core::TestVector snapped;
    for (double g : genome) {
      snapped.frequencies_hz.push_back(std::pow(10.0, pipeline.snap(g)));
    }
    snapped.normalize();
    EXPECT_DOUBLE_EQ(pipeline.evaluate_one(genome),
                     evaluator.fitness(snapped));
  }
}

TEST(EvaluationPipeline, TrajectoriesMatchTheReferenceBuilder) {
  const core::TestVectorEvaluator evaluator(paper_dictionary());
  const core::EvaluationPipeline pipeline(evaluator);

  for (const auto& genome : random_genomes(8, 2, 17)) {
    std::vector<double> freqs;
    for (double g : genome) freqs.push_back(std::pow(10.0, pipeline.snap(g)));
    std::sort(freqs.begin(), freqs.end());
    const auto reference = core::build_trajectories(
        paper_dictionary(), freqs, evaluator.policy());
    const auto piped = pipeline.trajectories(genome);
    ASSERT_EQ(reference.size(), piped.size());
    for (std::size_t t = 0; t < reference.size(); ++t) {
      EXPECT_EQ(reference[t].site(), piped[t].site());
      ASSERT_EQ(reference[t].point_count(), piped[t].point_count());
      for (std::size_t p = 0; p < reference[t].point_count(); ++p) {
        EXPECT_EQ(reference[t].points()[p].deviation,
                  piped[t].points()[p].deviation);
        EXPECT_EQ(reference[t].points()[p].coords, piped[t].points()[p].coords);
      }
    }
  }
}

TEST(EvaluationPipeline, BitIdenticalAcrossThreadCounts) {
  const core::TestVectorEvaluator evaluator(paper_dictionary());
  const auto genomes = random_genomes(64, 2, 23);

  core::PipelineOptions serial;
  serial.threads = 1;
  const core::EvaluationPipeline reference(evaluator, serial);
  const std::vector<double> expected = reference.evaluate(genomes);

  for (std::size_t threads : {2u, 8u}) {
    core::PipelineOptions options;
    options.threads = threads;
    const core::EvaluationPipeline pipeline(evaluator, options);
    EXPECT_EQ(pipeline.evaluate(genomes), expected)
        << "threads=" << threads;
  }
}

TEST(EvaluationPipeline, CacheNeverChangesScores) {
  const core::TestVectorEvaluator evaluator(paper_dictionary());
  const auto genomes = random_genomes(32, 2, 29);

  core::PipelineOptions cached;
  cached.threads = 1;
  cached.cache_signatures = true;
  core::PipelineOptions uncached = cached;
  uncached.cache_signatures = false;

  const core::EvaluationPipeline with_cache(evaluator, cached);
  const core::EvaluationPipeline without_cache(evaluator, uncached);
  EXPECT_EQ(with_cache.evaluate(genomes), without_cache.evaluate(genomes));

  // Re-evaluating the same genomes must hit the cache, not rebuild it.
  (void)with_cache.evaluate(genomes);
  const auto stats = with_cache.stats();
  EXPECT_GT(stats.column_hits, 0u);
  EXPECT_EQ(with_cache.options().cache_signatures, true);
  EXPECT_EQ(without_cache.stats().column_hits, 0u);
}

TEST(EvaluationPipeline, RejectsNonPositiveQuantum) {
  const core::TestVectorEvaluator evaluator(paper_dictionary());
  core::PipelineOptions options;
  options.frequency_quantum = 0.0;
  EXPECT_THROW(core::EvaluationPipeline(evaluator, options), ConfigError);
}

// ---------------------------------------------------------------------
// End-to-end search determinism through the Session facade.

TEST(SearchDeterminism, GaSearchBitIdenticalAcrossThreadCounts) {
  auto run = [&](std::size_t threads) {
    SearchOptions search;
    search.ga.population_size = 24;
    search.ga.generations = 4;
    search.threads = threads;
    return SessionBuilder::from_registry("sallen_key_lp")
        .search(search)
        .build()
        .run_search();
  };
  const TestGenResult reference = run(1);
  // The reported score is taken at the snapped genes the pipeline actually
  // evaluated, so it must agree with the fitness that selected the winner.
  EXPECT_EQ(reference.best.fitness, reference.search.best.fitness);
  for (std::size_t threads : {2u, 8u}) {
    const TestGenResult result = run(threads);
    EXPECT_EQ(result.search, reference.search) << "threads=" << threads;
    EXPECT_EQ(result.best.vector.frequencies_hz,
              reference.best.vector.frequencies_hz);
    EXPECT_EQ(result.best.fitness, reference.best.fitness);
    EXPECT_EQ(result.best.intersections, reference.best.intersections);
  }
}

TEST(SearchDeterminism, GenerateTestsInstallsIdenticalVectorAcrossThreads) {
  auto vector_for = [&](std::size_t threads) {
    SearchOptions search;
    search.ga.population_size = 16;
    search.ga.generations = 3;
    auto session = SessionBuilder::from_registry("sallen_key_lp")
                       .search(search)
                       .threads(threads)
                       .build();
    (void)session.generate_tests();
    return session.vector().frequencies_hz;
  };
  const auto reference = vector_for(1);
  EXPECT_EQ(vector_for(2), reference);
  EXPECT_EQ(vector_for(8), reference);
}

TEST(SearchDeterminism, BaselinesBitIdenticalAcrossThreadCounts) {
  const core::TestVectorEvaluator evaluator(paper_dictionary());
  auto run = [&](const ga::FrequencyOptimizer& optimizer,
                 std::size_t threads) {
    core::PipelineOptions options;
    options.threads = threads;
    const core::EvaluationPipeline pipeline(evaluator, options);
    Rng rng(5);
    return optimizer.optimize(pipeline, 2, {1.3, 4.7}, rng);
  };
  const ga::RandomSearch random(96);
  const ga::HillClimb hillclimb(96, 8, 0.4);
  for (const ga::FrequencyOptimizer* optimizer :
       {static_cast<const ga::FrequencyOptimizer*>(&random),
        static_cast<const ga::FrequencyOptimizer*>(&hillclimb)}) {
    const auto reference = run(*optimizer, 1);
    EXPECT_EQ(run(*optimizer, 2), reference) << optimizer->name();
    EXPECT_EQ(run(*optimizer, 8), reference) << optimizer->name();
  }
}

}  // namespace
}  // namespace ftdiag
