#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "circuits/nf_biquad.hpp"
#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "io/exporters.hpp"
#include "io/report.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace ftdiag::io {
namespace {

class IoTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    flow_ = new core::AtpgFlow(circuits::make_paper_cut());
  }
  static void TearDownTestSuite() {
    delete flow_;
    flow_ = nullptr;
  }
  static core::AtpgFlow* flow_;
};

core::AtpgFlow* IoTest::flow_ = nullptr;

TEST_F(IoTest, ResponseCsvHasExpectedColumns) {
  std::ostringstream os;
  write_response_csv(os, flow_->dictionary().golden());
  const auto table = csv::parse(os.str());
  EXPECT_EQ(table.header,
            (std::vector<std::string>{"freq_hz", "mag", "mag_db", "phase_deg"}));
  EXPECT_EQ(table.rows.size(), flow_->dictionary().golden().size());
}

TEST_F(IoTest, DictionaryCsvOneColumnPerFault) {
  std::ostringstream os;
  write_dictionary_csv(os, flow_->dictionary());
  const auto table = csv::parse(os.str());
  EXPECT_EQ(table.header.size(), 2u + flow_->dictionary().fault_count());
  EXPECT_EQ(table.header[0], "freq_hz");
  EXPECT_EQ(table.header[1], "golden");
  EXPECT_EQ(table.header[2], "Ra-40%");
  EXPECT_EQ(table.rows.size(), flow_->dictionary().frequencies().size());
}

TEST_F(IoTest, TrajectoryCsvRoundTrip) {
  const auto trajs = flow_->evaluator().trajectories({{400.0, 1300.0}});
  std::ostringstream os;
  write_trajectories_csv(os, trajs);
  const auto table = csv::parse(os.str());
  EXPECT_EQ(table.header,
            (std::vector<std::string>{"site", "deviation", "x0", "x1"}));
  // 7 sites x 9 points (8 deviations + golden).
  EXPECT_EQ(table.rows.size(), 7u * 9u);
}

TEST_F(IoTest, GnuplotScriptMentionsEverySite) {
  const auto trajs = flow_->evaluator().trajectories({{400.0, 1300.0}});
  const std::string script =
      trajectory_gnuplot_script(trajs, "trajs.csv", "paper CUT");
  for (const auto& t : trajs) {
    EXPECT_NE(script.find("'" + t.site() + "'"), std::string::npos);
  }
  EXPECT_NE(script.find("trajs.csv"), std::string::npos);
}

TEST_F(IoTest, GnuplotRequires2d) {
  const auto trajs =
      flow_->evaluator().trajectories({{200.0, 1000.0, 5000.0}});
  EXPECT_THROW(trajectory_gnuplot_script(trajs, "x.csv", "t"), ConfigError);
}

TEST(WriteFile, WritesAndFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/ftdiag_io_test.txt";
  write_file(path, "hello");
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  std::remove(path.c_str());
  EXPECT_THROW(write_file("/nonexistent_dir/x.txt", "y"), Error);
}

TEST_F(IoTest, AtpgReportContainsKeyNumbers) {
  const auto result = flow_->run();
  std::ostringstream os;
  print_atpg_report(os, result);
  const std::string report = os.str();
  EXPECT_NE(report.find("test vector"), std::string::npos);
  EXPECT_NE(report.find("fitness"), std::string::npos);
  EXPECT_NE(report.find("search convergence"), std::string::npos);
  EXPECT_NE(report.find("generation"), std::string::npos);
}

TEST_F(IoTest, DiagnosisReportRanksCandidates) {
  const auto engine = flow_->evaluator().make_engine({{400.0, 1300.0}});
  const auto diagnosis = engine.diagnose({0.01, -0.02});
  std::ostringstream os;
  print_diagnosis(os, diagnosis, 2);
  const std::string text = os.str();
  EXPECT_NE(text.find("diagnosis:"), std::string::npos);
  EXPECT_NE(text.find("rank"), std::string::npos);
}

TEST_F(IoTest, AccuracyReportIncludesConfusionMatrix) {
  core::EvaluationOptions options;
  options.trials = 30;
  const auto report = core::evaluate_diagnosis(
      flow_->cut(), flow_->dictionary(), {{700.0, 1600.0}},
      core::SamplingPolicy{}, options);
  std::ostringstream os;
  print_accuracy_report(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find("site accuracy"), std::string::npos);
  EXPECT_NE(text.find("confusion matrix"), std::string::npos);
  EXPECT_NE(text.find("ambiguity groups"), std::string::npos);
  EXPECT_NE(text.find("Ra"), std::string::npos);
}

}  // namespace
}  // namespace ftdiag::io
