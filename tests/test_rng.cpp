#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace ftdiag {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  EXPECT_NE(r(), 0u);  // must not be stuck at zero state
}

TEST(Uniform, InUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Uniform, MeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Uniform, RangeRespected) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(UniformInt, InclusiveBounds) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(0, 9);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 9);
    saw_lo |= v == 0;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformInt, SingleValueRange) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(4, 4), 4);
}

TEST(UniformInt, ApproximatelyUniform) {
  Rng r(17);
  std::vector<int> histogram(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histogram[r.uniform_int(0, 9)];
  for (int count : histogram) {
    EXPECT_NEAR(count, n / 10, n / 10 * 0.1);
  }
}

TEST(Normal, MeanAndVariance) {
  Rng r(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Normal, ShiftAndScale) {
  Rng r(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Bernoulli, Frequency) {
  Rng r(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(WeightedIndex, ProportionalSelection) {
  Rng r(37);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> histogram(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histogram[r.weighted_index(weights)];
  EXPECT_NEAR(histogram[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(histogram[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(histogram[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(WeightedIndex, ZeroWeightNeverChosen) {
  Rng r(41);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(r.weighted_index(weights), 1u);
}

TEST(WeightedIndex, AllZeroFallsBackToUniform) {
  Rng r(43);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> histogram(3, 0);
  for (int i = 0; i < 3000; ++i) ++histogram[r.weighted_index(weights)];
  for (int count : histogram) EXPECT_GT(count, 700);
}

TEST(Fork, ChildStreamIndependent) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child and parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng r(1);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), r);  // compiles and runs
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace ftdiag
