#include "core/test_vector.hpp"

#include <gtest/gtest.h>

#include "circuits/nf_biquad.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

class TestVectorFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    const auto cut = circuits::make_paper_cut();
    dict_ = new faults::FaultDictionary(faults::FaultDictionary::build(
        cut, faults::FaultUniverse::over_testable(cut)));
  }
  static void TearDownTestSuite() {
    delete dict_;
    dict_ = nullptr;
  }
  static faults::FaultDictionary* dict_;
};

faults::FaultDictionary* TestVectorFixture::dict_ = nullptr;

TEST(TestVector, LabelFormatsFrequencies) {
  const TestVector tv{{1234.0, 56000.0}};
  const std::string label = tv.label();
  EXPECT_NE(label.find("f1=1.234kHz"), std::string::npos);
  EXPECT_NE(label.find("f2=56kHz"), std::string::npos);
}

TEST(TestVector, NormalizeSortsAscending) {
  TestVector tv{{5000.0, 100.0, 1000.0}};
  tv.normalize();
  EXPECT_DOUBLE_EQ(tv.frequencies_hz[0], 100.0);
  EXPECT_DOUBLE_EQ(tv.frequencies_hz[2], 5000.0);
}

TEST_F(TestVectorFixture, TrajectoriesMatchSiteCount) {
  const TestVectorEvaluator evaluator(*dict_);
  const auto trajs = evaluator.trajectories({{300.0, 2000.0}});
  EXPECT_EQ(trajs.size(), 7u);
}

TEST_F(TestVectorFixture, EmptyVectorRejected) {
  const TestVectorEvaluator evaluator(*dict_);
  EXPECT_THROW(evaluator.trajectories({{}}), ConfigError);
}

TEST_F(TestVectorFixture, DefaultFitnessIsPaper) {
  const TestVectorEvaluator evaluator(*dict_);
  const auto score = evaluator.score({{300.0, 2000.0}});
  EXPECT_DOUBLE_EQ(
      score.fitness,
      1.0 / (1.0 + static_cast<double>(score.intersections)));
}

TEST_F(TestVectorFixture, CustomFitnessHonored) {
  const auto separation = std::make_shared<SeparationFitness>();
  const TestVectorEvaluator evaluator(*dict_, SamplingPolicy{}, separation);
  const TestVector tv{{300.0, 2000.0}};
  EXPECT_DOUBLE_EQ(evaluator.fitness(tv),
                   separation->evaluate(evaluator.trajectories(tv)));
}

TEST_F(TestVectorFixture, ScoreFieldsConsistent) {
  const TestVectorEvaluator evaluator(*dict_);
  const auto score = evaluator.score({{150.0, 4000.0}});
  EXPECT_EQ(score.vector.frequencies_hz.size(), 2u);
  EXPECT_GE(score.separation_margin, 0.0);
  EXPECT_LE(score.separation_margin, 1.0);
  EXPECT_GT(score.fitness, 0.0);
  EXPECT_LE(score.fitness, 1.0);
}

TEST_F(TestVectorFixture, FrequencyOrderDoesNotChangeFitness) {
  const TestVectorEvaluator evaluator(*dict_);
  TestVector fwd{{200.0, 3000.0}};
  TestVector rev{{3000.0, 200.0}};
  rev.normalize();
  EXPECT_DOUBLE_EQ(evaluator.fitness(fwd), evaluator.fitness(rev));
}

TEST_F(TestVectorFixture, MakeEngineProducesWorkingClassifier) {
  const TestVectorEvaluator evaluator(*dict_);
  const TestVector tv{{400.0, 1300.0}};
  const DiagnosisEngine engine = evaluator.make_engine(tv);
  EXPECT_EQ(engine.trajectories().size(), 7u);
  EXPECT_EQ(engine.dimension(), 2u);
  // Diagnose a dictionary point through the engine.
  const auto& entry = dict_->entries().front();
  const Point observed =
      evaluator.sampler().sample(entry.response, tv.frequencies_hz);
  EXPECT_EQ(engine.diagnose(observed).best().site, entry.fault.site.label());
}

TEST_F(TestVectorFixture, ThreeFrequencyVectorsSupported) {
  const TestVectorEvaluator evaluator(*dict_);
  const auto score = evaluator.score({{150.0, 1000.0, 8000.0}});
  EXPECT_GT(score.fitness, 0.0);
  const auto trajs = evaluator.trajectories({{150.0, 1000.0, 8000.0}});
  EXPECT_EQ(trajs.front().dimension(), 3u);
}

}  // namespace
}  // namespace ftdiag::core
