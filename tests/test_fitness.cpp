#include "core/fitness.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ftdiag::core {
namespace {

FaultTrajectory ray(const std::string& site, double dx, double dy) {
  std::vector<TrajectoryPoint> pts;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts.push_back({d, {d * dx, d * dy}});
  }
  return FaultTrajectory(site, std::move(pts));
}

TEST(PaperFitness, PerfectSeparationScoresOne) {
  const std::vector<FaultTrajectory> trajs = {ray("A", 1, 0), ray("B", 0, 1)};
  EXPECT_DOUBLE_EQ(IntersectionFitness().evaluate(trajs), 1.0);
}

TEST(PaperFitness, EachIntersectionLowersFitnessHyperbolically) {
  // fitness = 1/(1+I): with one crossing, 0.5.
  std::vector<TrajectoryPoint> crossing;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    crossing.push_back({d, {d + 0.1, 0.2 - d}});
  }
  const std::vector<FaultTrajectory> trajs = {
      ray("A", 1, 1), FaultTrajectory("B", std::move(crossing))};
  const double fitness = IntersectionFitness().evaluate(trajs);
  const auto report = count_intersections(trajs);
  EXPECT_DOUBLE_EQ(fitness, 1.0 / (1.0 + static_cast<double>(report.count)));
  EXPECT_LT(fitness, 1.0);
}

TEST(PaperFitness, CoincidentTrajectoriesScoreLow) {
  const std::vector<FaultTrajectory> trajs = {ray("A", 1, 1), ray("B", 1, 1)};
  EXPECT_LT(IntersectionFitness().evaluate(trajs), 0.5);
}

TEST(SeparationFitness, WideAnglesScoreHigherThanNarrow) {
  const std::vector<FaultTrajectory> wide = {ray("A", 1, 0), ray("B", 0, 1)};
  const std::vector<FaultTrajectory> narrow = {ray("A", 1, 0),
                                               ray("B", 1, 0.05)};
  SeparationFitness fitness;
  EXPECT_GT(fitness.evaluate(wide), fitness.evaluate(narrow));
  EXPECT_GT(fitness.margin(wide), fitness.margin(narrow));
}

TEST(SeparationFitness, SingleTrajectoryIsPerfect) {
  const std::vector<FaultTrajectory> one = {ray("A", 1, 0)};
  EXPECT_DOUBLE_EQ(SeparationFitness().margin(one), 1.0);
}

TEST(SeparationFitness, CoincidentTrajectoriesHaveZeroMargin) {
  const std::vector<FaultTrajectory> trajs = {ray("A", 1, 1), ray("B", 1, 1)};
  EXPECT_NEAR(SeparationFitness().margin(trajs), 0.0, 1e-12);
}

TEST(SeparationFitness, AlwaysInUnitInterval) {
  const std::vector<FaultTrajectory> trajs = {ray("A", 1, 0), ray("B", 0, 1),
                                              ray("C", -1, 1)};
  const double v = SeparationFitness().evaluate(trajs);
  EXPECT_GT(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(HybridFitness, BlendsBothObjectives) {
  const std::vector<FaultTrajectory> wide = {ray("A", 1, 0), ray("B", 0, 1)};
  const HybridFitness hybrid(0.5);
  const double expected = 0.5 * IntersectionFitness().evaluate(wide) +
                          0.5 * SeparationFitness().evaluate(wide);
  EXPECT_DOUBLE_EQ(hybrid.evaluate(wide), expected);
}

TEST(HybridFitness, WeightOutOfRangeRejected) {
  EXPECT_THROW(HybridFitness(1.5), ConfigError);
  EXPECT_THROW(HybridFitness(-0.1), ConfigError);
}

TEST(Factory, ByName) {
  EXPECT_EQ(make_fitness("paper")->name(), "paper-1/(1+I)");
  EXPECT_EQ(make_fitness("separation")->name(), "separation");
  EXPECT_EQ(make_fitness("hybrid")->name(), "hybrid");
  EXPECT_THROW(make_fitness("bogus"), ConfigError);
}

TEST(Factory, ByKind) {
  EXPECT_EQ(make_fitness(FitnessKind::kPaper)->name(), "paper-1/(1+I)");
  EXPECT_EQ(make_fitness(FitnessKind::kSeparation)->name(), "separation");
  EXPECT_EQ(make_fitness(FitnessKind::kHybrid)->name(), "hybrid");
}

TEST(Factory, ParseRoundTripsToString) {
  for (FitnessKind kind : {FitnessKind::kPaper, FitnessKind::kSeparation,
                           FitnessKind::kHybrid}) {
    EXPECT_EQ(parse_fitness_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_fitness_kind("bogus"), ConfigError);
}

TEST(Fitness, OrderingMatchesDiagnosability) {
  // separated > slightly-crossing > coincident, under every fitness.
  const std::vector<FaultTrajectory> separated = {ray("A", 1, 0),
                                                  ray("B", 0, 1)};
  std::vector<TrajectoryPoint> crossing_pts;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    crossing_pts.push_back({d, {d + 0.1, 0.2 - d}});
  }
  const std::vector<FaultTrajectory> crossing = {
      ray("A", 1, 1), FaultTrajectory("B", std::move(crossing_pts))};
  const std::vector<FaultTrajectory> coincident = {ray("A", 1, 1),
                                                   ray("B", 1, 1)};
  for (const char* name : {"paper", "hybrid"}) {
    const auto fitness = make_fitness(name);
    EXPECT_GT(fitness->evaluate(separated), fitness->evaluate(crossing))
        << name;
    EXPECT_GE(fitness->evaluate(crossing), fitness->evaluate(coincident))
        << name;
  }
}

}  // namespace
}  // namespace ftdiag::core
