#include "mna/frequency_grid.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ftdiag::mna {
namespace {

TEST(Grid, LinearSweep) {
  const auto f = FrequencyGrid::linear_sweep(100.0, 200.0, 5).frequencies();
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f.front(), 100.0);
  EXPECT_DOUBLE_EQ(f.back(), 200.0);
  EXPECT_DOUBLE_EQ(f[2], 150.0);
}

TEST(Grid, LogSweepEndpoints) {
  const auto f = FrequencyGrid::log_sweep(10.0, 1e5, 100).frequencies();
  ASSERT_EQ(f.size(), 100u);
  EXPECT_DOUBLE_EQ(f.front(), 10.0);
  EXPECT_DOUBLE_EQ(f.back(), 1e5);
}

TEST(Grid, LogSweepGeometricSpacing) {
  const auto f = FrequencyGrid::log_sweep(1.0, 100.0, 3).frequencies();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_NEAR(f[1], 10.0, 1e-9);
}

TEST(Grid, PerDecadeCount) {
  // 4 decades at 10 points/decade -> 41 points.
  const auto f = FrequencyGrid::per_decade(10.0, 1e5, 10).frequencies();
  EXPECT_EQ(f.size(), 41u);
  EXPECT_DOUBLE_EQ(f.front(), 10.0);
  EXPECT_DOUBLE_EQ(f.back(), 1e5);
}

TEST(Grid, Ascending) {
  for (const auto grid :
       {FrequencyGrid::log_sweep(5.0, 5e4, 77),
        FrequencyGrid::linear_sweep(1.0, 2.0, 13),
        FrequencyGrid::per_decade(1.0, 1e3, 7)}) {
    const auto f = grid.frequencies();
    for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
  }
}

TEST(Grid, InvalidSpecsThrow) {
  EXPECT_THROW(FrequencyGrid::log_sweep(10.0, 1.0, 5).frequencies(),
               ConfigError);
  EXPECT_THROW(FrequencyGrid::log_sweep(0.0, 1e3, 5).frequencies(),
               ConfigError);
  FrequencyGrid zero_points;
  zero_points.points = 0;
  EXPECT_THROW(zero_points.frequencies(), ConfigError);
}

TEST(Grid, DefaultIsAudioBandLog) {
  const FrequencyGrid grid;
  EXPECT_EQ(grid.kind, SweepKind::kLog);
  EXPECT_GT(grid.points, 0u);
  EXPECT_NO_THROW(grid.frequencies());
}

}  // namespace
}  // namespace ftdiag::mna
