#include "util/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ftdiag::args {
namespace {

Parser make_parser() {
  Parser p("tool", "test tool");
  p.positional("file", "input file")
      .option("count", "how many", "5")
      .option("name", "a name", "default")
      .flag("verbose", "talk more");
  return p;
}

std::vector<const char*> argv_of(std::initializer_list<const char*> items) {
  return {items};
}

TEST(Args, PositionalAndDefaults) {
  Parser p = make_parser();
  const auto argv = argv_of({"tool", "input.cir"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.positional_value("file"), "input.cir");
  EXPECT_EQ(p.get("count"), "5");
  EXPECT_EQ(p.get("name"), "default");
  EXPECT_FALSE(p.has("verbose"));
}

TEST(Args, SeparateValueForm) {
  Parser p = make_parser();
  const auto argv = argv_of({"tool", "f", "--count", "12"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.get("count"), "12");
  EXPECT_EQ(p.get_size("count"), 12u);
}

TEST(Args, EqualsValueForm) {
  Parser p = make_parser();
  const auto argv = argv_of({"tool", "f", "--name=filter", "--count=3"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.get("name"), "filter");
  EXPECT_EQ(p.get_size("count"), 3u);
}

TEST(Args, FlagForm) {
  Parser p = make_parser();
  const auto argv = argv_of({"tool", "f", "--verbose"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(p.has("verbose"));
}

TEST(Args, EngineeringValues) {
  Parser p = make_parser();
  const auto argv = argv_of({"tool", "f", "--count", "10k"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(p.get_double("count"), 10000.0);
}

TEST(Args, HelpShortCircuits) {
  Parser p = make_parser();
  const auto argv = argv_of({"tool", "--help"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(p.help_requested());
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("<file>"), std::string::npos);
}

TEST(Args, ErrorsAreLoud) {
  {
    Parser p = make_parser();
    const auto argv = argv_of({"tool", "f", "--bogus", "1"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ParseError);
  }
  {
    Parser p = make_parser();
    const auto argv = argv_of({"tool", "f", "--count"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ParseError);  // missing value
  }
  {
    Parser p = make_parser();
    const auto argv = argv_of({"tool"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ParseError);  // missing positional
  }
  {
    Parser p = make_parser();
    const auto argv = argv_of({"tool", "a", "b"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ParseError);  // extra positional
  }
  {
    Parser p = make_parser();
    const auto argv = argv_of({"tool", "f", "--verbose=yes"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ParseError);  // flags take no value
  }
}

TEST(Args, UndeclaredAccessThrows) {
  Parser p = make_parser();
  const auto argv = argv_of({"tool", "f"});
  p.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(p.get("nope"), ParseError);
  EXPECT_THROW((void)p.has("nope"), ParseError);
  EXPECT_THROW(p.get("verbose"), ParseError);  // flag accessed as option
  EXPECT_THROW((void)p.has("count"), ParseError);    // option accessed as flag
}

}  // namespace
}  // namespace ftdiag::args
