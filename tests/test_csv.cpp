#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace ftdiag::csv {
namespace {

TEST(Writer, PlainRows) {
  std::ostringstream os;
  Writer w(os);
  w.row({"a", "b"});
  w.row({"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Writer, QuotesSeparatorsAndQuotes) {
  std::ostringstream os;
  Writer w(os);
  w.row({"x,y", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(os.str(), "\"x,y\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Writer, NumericRowUsesFullPrecision) {
  std::ostringstream os;
  Writer w(os);
  w.row_numeric({1.0, 0.5, 1234.5678});
  EXPECT_EQ(os.str(), "1,0.5,1234.5678\n");
}

TEST(Writer, CustomSeparator) {
  std::ostringstream os;
  Writer w(os, ';');
  w.row({"a", "b"});
  EXPECT_EQ(os.str(), "a;b\n");
}

TEST(Parse, HeaderAndRows) {
  const Table t = parse("h1,h2\n1,2\n3,4\n");
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[0], "h1");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "4");
}

TEST(Parse, QuotedFieldWithSeparator) {
  const Table t = parse("a,b\n\"x,y\",z\n");
  EXPECT_EQ(t.rows[0][0], "x,y");
}

TEST(Parse, EscapedQuote) {
  const Table t = parse("a\n\"he said \"\"hi\"\"\"\n");
  EXPECT_EQ(t.rows[0][0], "he said \"hi\"");
}

TEST(Parse, QuotedNewline) {
  const Table t = parse("a,b\n\"two\nlines\",x\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "two\nlines");
}

TEST(Parse, ToleratesCrLf) {
  const Table t = parse("a,b\r\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(Parse, MissingTrailingNewline) {
  const Table t = parse("a,b\n1,2");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][1], "2");
}

TEST(Parse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse("a\n\"oops\n"), ParseError);
}

TEST(Parse, EmptyInput) {
  const Table t = parse("");
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

TEST(Table, ColumnLookup) {
  const Table t = parse("x,y,z\n1,2,3\n");
  EXPECT_EQ(t.column("y"), 1u);
  EXPECT_THROW((void)t.column("missing"), ParseError);
}

TEST(RoundTrip, WriteThenParse) {
  std::ostringstream os;
  Writer w(os);
  w.row({"name", "value"});
  w.row({"weird, name", "va\"l"});
  w.row({"plain", "1.5"});
  const Table t = parse(os.str());
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][0], "weird, name");
  EXPECT_EQ(t.rows[0][1], "va\"l");
  EXPECT_EQ(t.rows[1][1], "1.5");
}

TEST(ReadFile, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/path.csv"), ParseError);
}

}  // namespace
}  // namespace ftdiag::csv
