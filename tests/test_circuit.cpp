#include "netlist/circuit.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ftdiag::netlist {
namespace {

TEST(Nodes, GroundExistsUnderBothNames) {
  Circuit c;
  EXPECT_EQ(c.node_index("0"), kGround);
  EXPECT_EQ(c.node_index("gnd"), kGround);
  EXPECT_EQ(c.node_count(), 1u);
}

TEST(Nodes, GetOrCreateIsIdempotent) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_EQ(c.node("a"), a);
  EXPECT_EQ(c.node_count(), 2u);
}

TEST(Nodes, NamesAreCaseInsensitive) {
  Circuit c;
  EXPECT_EQ(c.node("OUT"), c.node("out"));
}

TEST(Nodes, UnknownLookupThrows) {
  const Circuit c;
  EXPECT_THROW((void)c.node_index("nope"), CircuitError);
  EXPECT_THROW((void)c.node_name(42), CircuitError);
}

TEST(Builder, AddsAndLooksUpComponents) {
  Circuit c;
  c.add_resistor("R1", "a", "0", 1000.0);
  EXPECT_TRUE(c.has_component("R1"));
  EXPECT_EQ(c.component("R1").kind, ComponentKind::kResistor);
  EXPECT_DOUBLE_EQ(c.value_of("R1"), 1000.0);
}

TEST(Builder, DuplicateNameRejected) {
  Circuit c;
  c.add_resistor("R1", "a", "0", 1.0);
  EXPECT_THROW(c.add_capacitor("R1", "a", "0", 1.0), CircuitError);
}

TEST(Builder, EmptyNameRejected) {
  Circuit c;
  EXPECT_THROW(c.add_resistor("", "a", "0", 1.0), CircuitError);
}

TEST(Builder, FluentChaining) {
  Circuit c;
  c.add_resistor("R1", "in", "out", 1e3)
      .add_capacitor("C1", "out", "0", 1e-9)
      .add_vsource("V1", "in", "0", 0.0, 1.0);
  EXPECT_EQ(c.component_count(), 3u);
}

TEST(Builder, WrongTerminalCountRejected) {
  Circuit c;
  Component bad;
  bad.name = "E1";
  bad.kind = ComponentKind::kVcvs;
  bad.nodes = {0, 0};  // needs 4
  EXPECT_THROW(c.add_component(bad), CircuitError);
}

TEST(Builder, UnresolvedNodeIdRejected) {
  Circuit c;
  Component bad;
  bad.name = "R9";
  bad.kind = ComponentKind::kResistor;
  bad.nodes = {0, 99};
  bad.value = 1.0;
  EXPECT_THROW(c.add_component(bad), CircuitError);
}

TEST(Access, NamesOfKind) {
  Circuit c;
  c.add_resistor("R1", "a", "0", 1.0);
  c.add_resistor("R2", "a", "b", 1.0);
  c.add_capacitor("C1", "b", "0", 1.0);
  const auto resistors = c.names_of(ComponentKind::kResistor);
  ASSERT_EQ(resistors.size(), 2u);
  EXPECT_EQ(resistors[0], "R1");
  const auto passives = c.passive_names();
  EXPECT_EQ(passives.size(), 3u);
}

TEST(Mutation, SetAndScaleValue) {
  Circuit c;
  c.add_resistor("R1", "a", "0", 100.0);
  c.set_value("R1", 220.0);
  EXPECT_DOUBLE_EQ(c.value_of("R1"), 220.0);
  c.scale_value("R1", 1.1);
  EXPECT_NEAR(c.value_of("R1"), 242.0, 1e-9);
}

TEST(Mutation, ValueOfSourceThrows) {
  Circuit c;
  c.add_vsource("V1", "a", "0", 1.0);
  EXPECT_THROW(c.set_value("V1", 2.0), CircuitError);
  EXPECT_THROW((void)c.value_of("V1"), CircuitError);
}

TEST(Mutation, UnknownComponentThrows) {
  Circuit c;
  EXPECT_THROW(c.set_value("R404", 1.0), CircuitError);
  EXPECT_THROW((void)c.component("R404"), CircuitError);
}

TEST(Mutation, OpAmpParams) {
  Circuit c;
  c.add_opamp("OA1", "p", "n", "out");
  c.add_resistor("Rl", "out", "0", 1e3);
  c.add_resistor("Rp", "p", "0", 1e3);
  c.add_resistor("Rn", "n", "0", 1e3);
  c.set_opamp_param("OA1", OpAmpParam::kGbw, 2e6);
  EXPECT_DOUBLE_EQ(c.opamp_param("OA1", OpAmpParam::kGbw), 2e6);
  EXPECT_THROW(c.set_opamp_param("Rl", OpAmpParam::kGbw, 1.0), CircuitError);
}

TEST(Validate, CleanRcDividerPasses) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_capacitor("C1", "out", "0", 1e-9);
  EXPECT_TRUE(c.validate().empty());
  EXPECT_NO_THROW(c.validate_or_throw());
}

TEST(Validate, NonPositiveValueReported) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "0", -5.0);
  const auto problems = c.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("non-positive"), std::string::npos);
  EXPECT_THROW(c.validate_or_throw(), CircuitError);
}

TEST(Validate, DanglingNodeReported) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "dangling", 1e3);
  const auto problems = c.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("dangling"), std::string::npos);
}

TEST(Validate, MissingControlSourceReported) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_resistor("R2", "out", "0", 1e3);
  c.add_cccs("F1", "out", "0", "Vmissing", 2.0);
  const auto problems = c.validate();
  ASSERT_FALSE(problems.empty());
}

TEST(Validate, IslandReported) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "0", 1e3);
  // Two-node island not connected to ground.
  c.add_resistor("R2", "x", "y", 1e3);
  c.add_resistor("R3", "x", "y", 2e3);
  const auto problems = c.validate();
  ASSERT_FALSE(problems.empty());
  bool found = false;
  for (const auto& p : problems) {
    found |= p.find("no conductive path") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Title, RoundTrips) {
  Circuit c;
  c.set_title("my filter");
  EXPECT_EQ(c.title(), "my filter");
}

}  // namespace
}  // namespace ftdiag::netlist
