/// Zero-copy dictionary views: a mapped `.fdx` image must serve the exact
/// bytes load_dictionary_binary decodes — via in-place spans when the v2
/// alignment guarantees hold, via the transparent decode fallback
/// otherwise — and corrupt or truncated images must be rejected at map
/// time, before any span is handed out.
#include "io/mapped_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "circuits/nf_biquad.hpp"
#include "io/dictionary_io.hpp"
#include "util/error.hpp"

namespace ftdiag::io {
namespace {

class MappedDictionaryTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    const auto cut = circuits::make_paper_cut();
    faults::DeviationSpec spec;
    spec.step_fraction = 0.2;
    dict_ = new faults::FaultDictionary(faults::FaultDictionary::build(
        cut, faults::FaultUniverse::over_testable(cut, spec),
        std::vector<double>{100.0, 1000.0, 10000.0}));
    std::ostringstream os;
    save_dictionary_binary(os, *dict_, "map#test");
    bytes_ = new std::string(os.str());
    path_ = new std::string(::testing::TempDir() + "/ftdiag_mapped.fdx");
    std::ofstream(*path_, std::ios::binary) << *bytes_;
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete bytes_;
    delete dict_;
    path_ = nullptr;
    bytes_ = nullptr;
    dict_ = nullptr;
  }

  static void expect_serves_the_dictionary(const DictionaryView& view) {
    ASSERT_EQ(view.frequency_count(), dict_->frequencies().size());
    ASSERT_EQ(view.fault_count(), dict_->fault_count());

    const auto freqs = view.frequencies();
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      EXPECT_EQ(freqs[i], dict_->frequencies()[i]);
    }
    const auto golden = view.golden();
    for (std::size_t i = 0; i < golden.size(); ++i) {
      EXPECT_EQ(golden[i], dict_->golden().values()[i]);
    }
    for (std::size_t e = 0; e < view.fault_count(); ++e) {
      EXPECT_EQ(view.faults()[e], dict_->entries()[e].fault);
      const auto values = view.response(e);
      ASSERT_EQ(values.size(), dict_->entries()[e].response.values().size());
      for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_EQ(values[i], dict_->entries()[e].response.values()[i]);
      }
    }
  }

  static faults::FaultDictionary* dict_;
  static std::string* bytes_;
  static std::string* path_;
};

faults::FaultDictionary* MappedDictionaryTest::dict_ = nullptr;
std::string* MappedDictionaryTest::bytes_ = nullptr;
std::string* MappedDictionaryTest::path_ = nullptr;

TEST_F(MappedDictionaryTest, MappedFileSeesTheExactBytes) {
  const MappedFile file = MappedFile::open(*path_);
  EXPECT_EQ(file.is_mapped(), mmap_supported());
  ASSERT_EQ(file.size(), bytes_->size());
  EXPECT_EQ(file.bytes(), *bytes_);
}

TEST_F(MappedDictionaryTest, MapServesSpansIdenticalToBinaryLoad) {
  const DictionaryView view = DictionaryView::map(*path_);
  EXPECT_EQ(view.header().key, "map#test");
  EXPECT_EQ(view.header().version, kBinaryDictionaryVersion);
  // The v2 writer 8-byte aligns every f64 run, so a mapped little-endian
  // image serves spans straight out of the page cache.
  if (mmap_supported()) EXPECT_TRUE(view.zero_copy());
  expect_serves_the_dictionary(view);
}

TEST_F(MappedDictionaryTest, InMemoryViewServesTheSameSpans) {
  expect_serves_the_dictionary(DictionaryView::over(*bytes_));
}

TEST_F(MappedDictionaryTest, MaterializeIsBitIdenticalToBinaryLoad) {
  const faults::FaultDictionary loaded = load_dictionary_binary(*bytes_);
  const faults::FaultDictionary materialized =
      DictionaryView::map(*path_).materialize();
  ASSERT_EQ(materialized.fault_count(), loaded.fault_count());
  EXPECT_EQ(materialized.frequencies(), loaded.frequencies());
  EXPECT_EQ(materialized.golden().values(), loaded.golden().values());
  EXPECT_EQ(materialized.site_labels(), loaded.site_labels());
  for (std::size_t i = 0; i < loaded.fault_count(); ++i) {
    EXPECT_EQ(materialized.entries()[i].fault, loaded.entries()[i].fault);
    EXPECT_EQ(materialized.entries()[i].response.values(),
              loaded.entries()[i].response.values());
  }
}

TEST_F(MappedDictionaryTest, ViewsAreCheapSharedHandles) {
  // Copies alias one validated state; spans from either stay valid while
  // any handle lives.
  DictionaryView view = DictionaryView::over(*bytes_);
  const DictionaryView copy = view;
  EXPECT_EQ(copy.frequencies().data(), view.frequencies().data());
}

TEST_F(MappedDictionaryTest, CorruptImagesRejectedAtMapTime) {
  // A flipped payload bit fails a block checksum during validation.
  std::string flipped = *bytes_;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_THROW((void)DictionaryView::over(flipped), ParseError);

  // Truncation anywhere is caught before any span is served.
  for (std::size_t keep : {std::size_t{0}, std::size_t{16},
                           bytes_->size() / 2, bytes_->size() - 1}) {
    EXPECT_THROW((void)DictionaryView::over(bytes_->substr(0, keep)),
                 ParseError);
  }

  // Checksum verification can be skipped (warm attach), but structural
  // bounds are always enforced.
  EXPECT_NO_THROW((void)DictionaryView::over(*bytes_, false));
  EXPECT_THROW(
      (void)DictionaryView::over(bytes_->substr(0, bytes_->size() / 2),
                                 false),
      ParseError);
}

TEST_F(MappedDictionaryTest, MissingFileRejected) {
  EXPECT_THROW((void)MappedFile::open("/nonexistent/ftdiag.fdx"),
               ParseError);
  EXPECT_THROW((void)DictionaryView::map("/nonexistent/ftdiag.fdx"),
               ParseError);
}

}  // namespace
}  // namespace ftdiag::io
