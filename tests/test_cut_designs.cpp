/// Design-space sweeps: every parametric circuit factory must realize its
/// design equations (f0, Q, gain) across the whole supported range, with
/// ideal and with macro-model op-amps.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/mfb.hpp"
#include "circuits/nf_biquad.hpp"
#include "circuits/sallen_key.hpp"
#include "circuits/state_variable.hpp"
#include "circuits/tow_thomas.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/transfer_function.hpp"

namespace ftdiag::circuits {
namespace {

struct Design {
  double f0;
  double q;
  double gain;
};

std::ostream& operator<<(std::ostream& os, const Design& d) {
  return os << "f0=" << d.f0 << " Q=" << d.q << " gain=" << d.gain;
}

mna::AcResponse sweep(const CircuitUnderTest& cut) {
  mna::AcAnalysis analysis(cut.circuit);
  return analysis.sweep(cut.dictionary_grid, cut.output_node);
}

/// |H| at f0 of a 2nd-order low-pass equals gain * Q.
void expect_biquad_lp(const CircuitUnderTest& cut, const Design& d,
                      double rel_tol = 0.01) {
  mna::AcAnalysis analysis(cut.circuit);
  const double at_dc =
      std::abs(analysis.node_voltage(d.f0 / 500.0, cut.output_node));
  const double at_f0 = std::abs(analysis.node_voltage(d.f0, cut.output_node));
  EXPECT_NEAR(at_dc, d.gain, rel_tol * d.gain) << "DC gain";
  EXPECT_NEAR(at_f0, d.gain * d.q, rel_tol * d.gain * d.q) << "|H(f0)|";
}

class NfBiquadDesignTest : public ::testing::TestWithParam<Design> {};

TEST_P(NfBiquadDesignTest, RealizesDesignEquations) {
  const Design d = GetParam();
  NfBiquadDesign design;
  design.f0_hz = d.f0;
  design.q = d.q;
  design.dc_gain = d.gain;
  expect_biquad_lp(make_nf_biquad(design), d);
}

TEST_P(NfBiquadDesignTest, AnalyticFormulaTracksMna) {
  const Design d = GetParam();
  NfBiquadDesign design;
  design.f0_hz = d.f0;
  design.q = d.q;
  design.dc_gain = d.gain;
  const auto cut = make_nf_biquad(design);
  mna::AcAnalysis analysis(cut.circuit);
  for (double factor : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    const double f = d.f0 * factor;
    EXPECT_NEAR(std::abs(analysis.node_voltage(f, cut.output_node) -
                         nf_biquad_transfer(design, f)),
                0.0, 1e-9)
        << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, NfBiquadDesignTest,
    ::testing::Values(Design{1e3, 0.707, 1.0}, Design{1e3, 2.0, 1.0},
                      Design{1e3, 5.0, 0.5}, Design{100.0, 0.707, 1.5},
                      Design{50e3, 1.0, 1.0}, Design{10e3, 0.6, 1.9}));

class TowThomasDesignTest : public ::testing::TestWithParam<Design> {};

TEST_P(TowThomasDesignTest, RealizesDesignEquations) {
  const Design d = GetParam();
  TowThomasDesign design;
  design.f0_hz = d.f0;
  design.q = d.q;
  design.dc_gain = d.gain;
  expect_biquad_lp(make_tow_thomas(design), d);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, TowThomasDesignTest,
    ::testing::Values(Design{1e3, 0.707, 1.0}, Design{1e3, 3.0, 2.0},
                      Design{250.0, 1.0, 0.5}, Design{20e3, 0.9, 4.0}));

class SallenKeyDesignTest : public ::testing::TestWithParam<Design> {};

TEST_P(SallenKeyDesignTest, LowpassRealizesF0AndQ) {
  const Design d = GetParam();
  SallenKeyDesign design;
  design.f0_hz = d.f0;
  design.q = d.q;
  expect_biquad_lp(make_sallen_key_lowpass(design), {d.f0, d.q, 1.0});
}

TEST_P(SallenKeyDesignTest, HighpassIsMirrored) {
  const Design d = GetParam();
  SallenKeyDesign design;
  design.f0_hz = d.f0;
  design.q = d.q;
  const auto cut = make_sallen_key_highpass(design);
  mna::AcAnalysis analysis(cut.circuit);
  EXPECT_NEAR(std::abs(analysis.node_voltage(d.f0, "out")), d.q, 0.01 * d.q);
  EXPECT_NEAR(std::abs(analysis.node_voltage(d.f0 * 500.0, "out")), 1.0,
              0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, SallenKeyDesignTest,
    ::testing::Values(Design{1e3, 0.707, 1.0}, Design{1e3, 4.0, 1.0},
                      Design{320.0, 1.3, 1.0}, Design{64e3, 0.55, 1.0}));

class MfbDesignTest : public ::testing::TestWithParam<Design> {};

TEST_P(MfbDesignTest, LowpassRealizesDesign) {
  const Design d = GetParam();
  MfbDesign design;
  design.f0_hz = d.f0;
  design.q = d.q;
  design.gain = d.gain;
  expect_biquad_lp(make_mfb_lowpass(design), d);
}

TEST_P(MfbDesignTest, BandpassPeaksAtDesign) {
  const Design d = GetParam();
  if (2.0 * d.q * d.q <= d.gain) GTEST_SKIP() << "unrealizable R3";
  MfbDesign design;
  design.f0_hz = d.f0;
  design.q = d.q;
  design.gain = d.gain;
  const auto cut = make_mfb_bandpass(design);
  // Exact check at the design centre (grid peak-picking under-reads
  // narrow peaks): |H(f0)| = gain for the MFB band-pass.
  mna::AcAnalysis analysis(cut.circuit);
  EXPECT_NEAR(std::abs(analysis.node_voltage(d.f0, cut.output_node)), d.gain,
              0.01 * d.gain);
  const auto summary = mna::measure_bandpass(sweep(cut));
  EXPECT_NEAR(summary.f_peak_hz, d.f0, 0.03 * d.f0);
  EXPECT_NEAR(summary.q, d.q, 0.15 * d.q);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, MfbDesignTest,
    ::testing::Values(Design{1e3, 2.0, 1.0}, Design{1e3, 5.0, 3.0},
                      Design{400.0, 1.5, 0.8}, Design{12e3, 8.0, 2.0}));

class StateVariableDesignTest : public ::testing::TestWithParam<Design> {};

TEST_P(StateVariableDesignTest, LowpassRealizesDesign) {
  const Design d = GetParam();
  StateVariableDesign design;
  design.f0_hz = d.f0;
  design.q = d.q;
  expect_biquad_lp(make_state_variable(design), {d.f0, d.q, 1.0});
}

INSTANTIATE_TEST_SUITE_P(
    Designs, StateVariableDesignTest,
    ::testing::Values(Design{1e3, 1.0, 1.0}, Design{1e3, 5.0, 1.0},
                      Design{150.0, 0.8, 1.0}, Design{30e3, 2.5, 1.0}));

// ---- macro-model op-amps ---------------------------------------------

/// With a fast macro op-amp (GBW >> f0) the realized response must stay
/// within a few percent of the ideal design in the band of interest.
class MacroOpAmpTest : public ::testing::TestWithParam<double> {};

TEST_P(MacroOpAmpTest, NfBiquadCloseToIdealDesign) {
  const double f0 = GetParam();
  NfBiquadDesign design;
  design.f0_hz = f0;
  design.ideal_opamps = false;  // default macro model, GBW = 1 MHz
  const auto cut = make_nf_biquad(design);
  mna::AcAnalysis analysis(cut.circuit);
  EXPECT_NEAR(std::abs(analysis.node_voltage(f0 / 100.0, cut.output_node)),
              1.0, 0.02);
  EXPECT_NEAR(std::abs(analysis.node_voltage(f0, cut.output_node)),
              1.0 / std::sqrt(2.0), 0.03);
}

TEST_P(MacroOpAmpTest, TowThomasCloseToIdealDesign) {
  const double f0 = GetParam();
  TowThomasDesign design;
  design.f0_hz = f0;
  design.ideal_opamps = false;
  const auto cut = make_tow_thomas(design);
  mna::AcAnalysis analysis(cut.circuit);
  EXPECT_NEAR(std::abs(analysis.node_voltage(f0 / 100.0, cut.output_node)),
              1.0, 0.02);
  EXPECT_NEAR(std::abs(analysis.node_voltage(f0, cut.output_node)),
              1.0 / std::sqrt(2.0), 0.05);
}

INSTANTIATE_TEST_SUITE_P(CornerFrequencies, MacroOpAmpTest,
                         ::testing::Values(200.0, 1000.0, 4000.0));

TEST(MacroOpAmpLimits, GbwStarvationDegradesTheFilter) {
  // With GBW only 20x f0 the realized response must deviate visibly —
  // the macro model captures finite-bandwidth effects.
  NfBiquadDesign design;
  design.f0_hz = 10e3;
  design.ideal_opamps = false;
  design.opamp_model.gbw_hz = 200e3;
  const auto starved = make_nf_biquad(design);
  design.opamp_model.gbw_hz = 100e6;
  const auto fast = make_nf_biquad(design);
  mna::AcAnalysis slow_an(starved.circuit);
  mna::AcAnalysis fast_an(fast.circuit);
  const double slow_mag = std::abs(slow_an.node_voltage(10e3, "out"));
  const double fast_mag = std::abs(fast_an.node_voltage(10e3, "out"));
  EXPECT_GT(std::fabs(slow_mag - fast_mag), 0.02);
  EXPECT_NEAR(fast_mag, 1.0 / std::sqrt(2.0), 0.01);
}

}  // namespace
}  // namespace ftdiag::circuits
