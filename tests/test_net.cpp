/// Network-layer tests: wire codec bit-exactness and hostile-input
/// rejection (no sockets needed), then a real loopback server — blocking
/// and pipelined clients must be bit-identical to in-process
/// Session::diagnose_batch, per-request errors must not drop the
/// connection, and adversarial frames (oversized length prefix, truncated
/// payload, unknown message type, mid-frame disconnect) must end in an
/// error frame or a clean close, never a crash.
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "circuits/nf_biquad.hpp"
#include "io/binary.hpp"
#include "mna/frequency_grid.hpp"
#include "service/diagnosis_service.hpp"
#include "session.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag::net {
namespace {

// ------------------------------------------------------------ wire codec

/// Doubles chosen to shake out any non-bit-exact path: non-terminating
/// fractions, signed zero, denormals, huge magnitudes.
const double kNastyDoubles[] = {1.0 / 3.0, -0.0, 5e-324, -1.7e308,
                                123456.789012345678};

service::DiagnosisRequest sample_request() {
  service::DiagnosisRequest request;
  request.circuit = "paper";
  request.points.push_back(core::Point{kNastyDoubles[0], kNastyDoubles[1]});
  request.points.push_back(core::Point{kNastyDoubles[2], kNastyDoubles[3],
                                       kNastyDoubles[4]});
  request.measured.push_back(mna::AcResponse(
      {100.0, 1000.0},
      {mna::Complex(1.0 / 7.0, -2.0 / 7.0), mna::Complex(-0.0, 5e-324)}));
  return request;
}

TEST(WireCodec, DiagnoseRoundTripIsBitExact) {
  const service::DiagnosisRequest request = sample_request();
  const DecodedDiagnose decoded =
      decode_diagnose(encode_diagnose(42, request));
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.request.circuit, request.circuit);
  ASSERT_EQ(decoded.request.points.size(), request.points.size());
  for (std::size_t i = 0; i < request.points.size(); ++i) {
    EXPECT_EQ(decoded.request.points[i], request.points[i]);
  }
  ASSERT_EQ(decoded.request.measured.size(), request.measured.size());
  for (std::size_t i = 0; i < request.measured.size(); ++i) {
    EXPECT_EQ(decoded.request.measured[i].frequencies(),
              request.measured[i].frequencies());
    EXPECT_EQ(decoded.request.measured[i].values(),
              request.measured[i].values());
  }
}

TEST(WireCodec, ReplyRoundTripIsBitExact) {
  service::DiagnosisReply reply;
  core::Diagnosis diagnosis;
  core::TrajectoryMatch match;
  match.site = "R1";
  match.distance = 1.0 / 3.0;
  match.segment_index = 7;
  match.t = 0.123456789012345678;
  match.estimated_deviation = -5e-324;
  diagnosis.ranking.push_back(match);
  match.site = "C2";
  match.distance = 0.0;
  diagnosis.ranking.push_back(match);
  reply.results.push_back(diagnosis);
  reply.results.push_back(core::Diagnosis{});  // empty ranking survives too

  const DecodedReply decoded = decode_reply(encode_reply(7, reply));
  EXPECT_EQ(decoded.request_id, 7u);
  ASSERT_EQ(decoded.reply.results.size(), 2u);
  ASSERT_EQ(decoded.reply.results[0].ranking.size(), 2u);
  EXPECT_TRUE(decoded.reply.results[1].ranking.empty());
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& a = reply.results[0].ranking[i];
    const auto& b = decoded.reply.results[0].ranking[i];
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.distance, b.distance);
    EXPECT_EQ(a.segment_index, b.segment_index);
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.estimated_deviation, b.estimated_deviation);
  }
}

TEST(WireCodec, ErrorRoundTrip) {
  const DecodedError decoded =
      decode_error(encode_error(9, "dictionary on fire"));
  EXPECT_EQ(decoded.request_id, 9u);
  EXPECT_EQ(decoded.message, "dictionary on fire");
}

TEST(WireCodec, FrameHeaderRoundTrip) {
  const std::string frame = encode_frame(MessageType::kDiagnose, "abc");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 3);
  const FrameHeader header =
      decode_frame_header(std::string_view(frame).substr(0, kFrameHeaderBytes));
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.type, static_cast<std::uint8_t>(MessageType::kDiagnose));
  EXPECT_EQ(header.payload_size, 3u);
}

TEST(WireCodec, HeaderRejectsBadMagicVersionFlagsAndOversize) {
  const std::string good = encode_frame(MessageType::kPing, "");
  auto corrupt = [&](std::size_t at, char value) {
    std::string bytes = good;
    bytes[at] = value;
    return bytes;
  };
  EXPECT_THROW((void)decode_frame_header(corrupt(0, 'X')), ParseError);
  EXPECT_THROW((void)decode_frame_header(corrupt(4, 99)), ParseError);
  EXPECT_THROW((void)decode_frame_header(corrupt(6, 1)), ParseError);
  EXPECT_THROW((void)decode_frame_header(good.substr(0, 5)), ParseError);

  // An adversarial length prefix is rejected against the receiver bound
  // before anything is allocated from it.
  std::string oversized = good;
  oversized[8] = '\xff';
  oversized[9] = '\xff';
  oversized[10] = '\xff';
  oversized[11] = '\x7f';
  EXPECT_THROW((void)decode_frame_header(oversized), ParseError);
  EXPECT_NO_THROW((void)decode_frame_header(oversized, 0x7fffffffu));
}

TEST(WireCodec, HostileCountsRejectedBeforeAllocation) {
  // A diagnose payload declaring 2^32-1 points but carrying none must be
  // a clean ParseError, not a giant reserve.
  std::string payload;
  io::put_u64(payload, 1);
  io::put_str(payload, "paper");
  io::put_u32(payload, 0xffffffffu);
  EXPECT_THROW((void)decode_diagnose(payload), ParseError);

  // Same for a point's own dimension count...
  std::string dims;
  io::put_u64(dims, 1);
  io::put_str(dims, "paper");
  io::put_u32(dims, 1);
  io::put_u32(dims, 0xffffffffu);
  EXPECT_THROW((void)decode_diagnose(dims), ParseError);

  // ...and for a reply's ranking count.
  std::string ranking;
  io::put_u64(ranking, 1);
  io::put_u32(ranking, 1);
  io::put_u32(ranking, 0xffffffffu);
  EXPECT_THROW((void)decode_reply(ranking), ParseError);

  // Truncated payloads of every length are rejected too.
  const std::string whole = encode_diagnose(3, sample_request());
  for (std::size_t keep = 0; keep < whole.size(); keep += 7) {
    EXPECT_THROW((void)decode_diagnose(whole.substr(0, keep)), ParseError);
  }
}

// -------------------------------------------------------------- loopback

/// One live server over a real socket, shared by every loopback test.
class NetLoopbackTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    if (!sockets_supported()) return;
    auto cut = circuits::make_paper_cut();
    cut.dictionary_grid = mna::FrequencyGrid::log_sweep(100.0, 10000.0, 24);
    faults::DeviationSpec spec;
    spec.step_fraction = 0.2;
    session_ = new Session(
        SessionBuilder(cut).deviations(spec).build());
    session_->use_vector(core::TestVector{{700.0, 1600.0}});

    Rng rng(7);
    points_ = new std::vector<core::Point>;
    for (std::size_t i = 0; i < 48; ++i) {
      points_->push_back(
          core::Point{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2)});
    }
    serial_ = new std::vector<core::Diagnosis>(
        session_->diagnose_batch(*points_));

    service_ = new service::DiagnosisService;
    service_->add_session("paper", *session_);
    ServerOptions options;
    options.port = 0;  // ephemeral
    server_ = new Server(*service_, options);
  }
  static void TearDownTestSuite() {
    delete server_;
    delete service_;
    delete serial_;
    delete points_;
    delete session_;
    server_ = nullptr;
    service_ = nullptr;
    serial_ = nullptr;
    points_ = nullptr;
    session_ = nullptr;
  }

  void SetUp() override {
    if (!sockets_supported()) GTEST_SKIP() << "no socket support";
  }

  static void expect_same(const core::Diagnosis& a,
                          const core::Diagnosis& b) {
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t i = 0; i < a.ranking.size(); ++i) {
      EXPECT_EQ(a.ranking[i].site, b.ranking[i].site);
      EXPECT_EQ(a.ranking[i].distance, b.ranking[i].distance);
      EXPECT_EQ(a.ranking[i].segment_index, b.ranking[i].segment_index);
      EXPECT_EQ(a.ranking[i].t, b.ranking[i].t);
      EXPECT_EQ(a.ranking[i].estimated_deviation,
                b.ranking[i].estimated_deviation);
    }
  }

  static Client connect() { return Client("127.0.0.1", server_->port()); }

  /// Read one frame off a raw socket (adversarial tests speak bytes, not
  /// the Client API).  nullopt on a clean close.
  static std::optional<std::pair<FrameHeader, std::string>> read_raw(
      Socket& socket) {
    char header_bytes[kFrameHeaderBytes];
    if (!socket.recv_exact(header_bytes, kFrameHeaderBytes)) {
      return std::nullopt;
    }
    const FrameHeader header =
        decode_frame_header({header_bytes, kFrameHeaderBytes});
    std::string payload(header.payload_size, '\0');
    if (header.payload_size > 0 &&
        !socket.recv_exact(payload.data(), payload.size())) {
      throw NetError("server closed mid-frame");
    }
    return std::make_pair(header, std::move(payload));
  }

  static Session* session_;
  static std::vector<core::Point>* points_;
  static std::vector<core::Diagnosis>* serial_;
  static service::DiagnosisService* service_;
  static Server* server_;
};

Session* NetLoopbackTest::session_ = nullptr;
std::vector<core::Point>* NetLoopbackTest::points_ = nullptr;
std::vector<core::Diagnosis>* NetLoopbackTest::serial_ = nullptr;
service::DiagnosisService* NetLoopbackTest::service_ = nullptr;
Server* NetLoopbackTest::server_ = nullptr;

TEST_F(NetLoopbackTest, BlockingDiagnoseBitIdenticalToInProcess) {
  Client client = connect();
  for (std::size_t i = 0; i < points_->size(); i += 5) {
    service::DiagnosisRequest request;
    request.circuit = "paper";
    request.points.push_back((*points_)[i]);
    const service::DiagnosisReply reply = client.diagnose(request);
    ASSERT_EQ(reply.results.size(), 1u);
    expect_same(reply.results.front(), (*serial_)[i]);
  }
}

TEST_F(NetLoopbackTest, MultiPointRequestMatchesDiagnoseBatch) {
  // All observations in one frame: the reply must equal diagnose_batch
  // bit for bit, in order.
  Client client = connect();
  service::DiagnosisRequest request;
  request.circuit = "paper";
  request.points = *points_;
  const service::DiagnosisReply reply = client.diagnose(request);
  ASSERT_EQ(reply.results.size(), serial_->size());
  for (std::size_t i = 0; i < serial_->size(); ++i) {
    expect_same(reply.results[i], (*serial_)[i]);
  }
}

TEST_F(NetLoopbackTest, PipelinedRepliesComeBackInOrder) {
  Client client = connect();
  std::vector<service::DiagnosisRequest> requests;
  for (const auto& point : *points_) {
    service::DiagnosisRequest request;
    request.circuit = "paper";
    request.points.push_back(point);
    requests.push_back(std::move(request));
  }
  const auto replies = client.diagnose_pipelined(requests, 7);
  ASSERT_EQ(replies.size(), serial_->size());
  for (std::size_t i = 0; i < serial_->size(); ++i) {
    ASSERT_EQ(replies[i].results.size(), 1u);
    expect_same(replies[i].results.front(), (*serial_)[i]);
  }
}

TEST_F(NetLoopbackTest, ConcurrentClientsAllGetTheirOwnBits) {
  constexpr std::size_t kClients = 4;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([c] {
      Client client = connect();
      for (std::size_t i = c; i < points_->size(); i += kClients) {
        service::DiagnosisRequest request;
        request.circuit = "paper";
        request.points.push_back((*points_)[i]);
        const service::DiagnosisReply reply = client.diagnose(request);
        ASSERT_EQ(reply.results.size(), 1u);
        expect_same(reply.results.front(), (*serial_)[i]);
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST_F(NetLoopbackTest, PingPong) {
  Client client = connect();
  client.ping();
}

TEST_F(NetLoopbackTest, RequestErrorsAreIsolatedPerRequest) {
  Client client = connect();

  // Unknown circuit: the server answers with an error frame...
  service::DiagnosisRequest bogus;
  bogus.circuit = "no_such_circuit";
  bogus.points.push_back((*points_)[0]);
  EXPECT_THROW((void)client.diagnose(bogus), RemoteError);

  // ...an empty request is rejected by the service the same way...
  EXPECT_THROW((void)client.diagnose(service::DiagnosisRequest{}),
               RemoteError);

  // ...and the connection is still perfectly usable afterwards.
  service::DiagnosisRequest good;
  good.circuit = "paper";
  good.points.push_back((*points_)[0]);
  const service::DiagnosisReply reply = client.diagnose(good);
  ASSERT_EQ(reply.results.size(), 1u);
  expect_same(reply.results.front(), (*serial_)[0]);
}

TEST_F(NetLoopbackTest, UnknownMessageTypeGetsErrorFrameNotDisconnect) {
  Socket socket = connect_tcp("127.0.0.1", server_->port());
  socket.send_all(encode_frame(static_cast<MessageType>(9), "junk"));
  auto frame = read_raw(socket);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->first.type, static_cast<std::uint8_t>(MessageType::kError));
  // The stream is still framed: a ping on the same connection answers.
  socket.send_all(encode_frame(MessageType::kPing, ""));
  frame = read_raw(socket);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->first.type, static_cast<std::uint8_t>(MessageType::kPong));
}

TEST_F(NetLoopbackTest, MalformedDiagnosePayloadGetsErrorFrame) {
  Socket socket = connect_tcp("127.0.0.1", server_->port());
  // Well-framed, but the payload is garbage: this request fails, the
  // connection survives.
  socket.send_all(encode_frame(MessageType::kDiagnose, "garbage"));
  auto frame = read_raw(socket);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->first.type, static_cast<std::uint8_t>(MessageType::kError));
  socket.send_all(encode_frame(MessageType::kPing, ""));
  frame = read_raw(socket);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->first.type, static_cast<std::uint8_t>(MessageType::kPong));
}

TEST_F(NetLoopbackTest, OversizedLengthPrefixAnswersThenCloses) {
  Socket socket = connect_tcp("127.0.0.1", server_->port());
  // Magic + version + type are fine; the length prefix claims 2 GiB.
  std::string header;
  header.append(kFrameMagic, sizeof(kFrameMagic));
  io::put_u8(header, kWireVersion);
  io::put_u8(header, static_cast<std::uint8_t>(MessageType::kDiagnose));
  io::put_u16(header, 0);
  io::put_u32(header, 0x7fffffffu);
  socket.send_all(header);
  // The stream cannot be resynchronized: one error frame, then a clean
  // close — and crucially no 2 GiB allocation server-side.
  auto frame = read_raw(socket);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->first.type, static_cast<std::uint8_t>(MessageType::kError));
  EXPECT_FALSE(read_raw(socket).has_value());
}

TEST_F(NetLoopbackTest, BadMagicAnswersThenCloses) {
  Socket socket = connect_tcp("127.0.0.1", server_->port());
  socket.send_all(std::string(kFrameHeaderBytes, 'x'));
  auto frame = read_raw(socket);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->first.type, static_cast<std::uint8_t>(MessageType::kError));
  EXPECT_FALSE(read_raw(socket).has_value());
}

TEST_F(NetLoopbackTest, MidFrameDisconnectLeavesServerServing) {
  {
    // Half a header, then vanish.
    Socket socket = connect_tcp("127.0.0.1", server_->port());
    socket.send_all("FTDN\x01");
  }
  {
    // A full header, a truncated payload, then vanish.
    Socket socket = connect_tcp("127.0.0.1", server_->port());
    std::string bytes = encode_frame(MessageType::kDiagnose,
                                     std::string(64, 'p'));
    bytes.resize(bytes.size() - 32);
    socket.send_all(bytes);
  }
  // The server shrugged both off and keeps serving everyone else.
  Client client = connect();
  service::DiagnosisRequest request;
  request.circuit = "paper";
  request.points.push_back((*points_)[1]);
  const service::DiagnosisReply reply = client.diagnose(request);
  ASSERT_EQ(reply.results.size(), 1u);
  expect_same(reply.results.front(), (*serial_)[1]);
}

TEST_F(NetLoopbackTest, StatsCountTheTraffic) {
  const ServerStats stats = server_->stats();
  EXPECT_GT(stats.connections_accepted, 0u);
  EXPECT_GT(stats.requests_received, 0u);
  EXPECT_GT(stats.replies_sent, 0u);
  const service::ServiceStats svc = service_->stats();
  EXPECT_GT(svc.completed, 0u);
  EXPECT_GE(svc.mean_batch, 1.0);
}

TEST_F(NetLoopbackTest, CounterIdentityAfterMixedPipelinedTraffic) {
  // Every diagnose frame — well-formed, unknown-circuit, or outright
  // garbage — must resolve to exactly one reply or error frame:
  //   requests_received == replies_sent + error_frames_sent
  // once the connections drain.  A dedicated server keeps the suite's
  // protocol-error tests (which send error frames that are *not*
  // diagnose requests) out of the ledger.
  service::DiagnosisService service;
  service.add_session("paper", *session_);
  ServerOptions options;
  options.port = 0;
  Server server(service, options);

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kPerClient = 12;
  constexpr std::size_t kWindow = 4;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, c] {
      Client client("127.0.0.1", server.port());
      std::vector<service::DiagnosisRequest> requests;
      for (std::size_t i = 0; i < kPerClient; ++i) {
        service::DiagnosisRequest request;
        // Every third request targets a circuit the server does not
        // have, so error frames interleave with replies mid-pipeline.
        request.circuit = i % 3 == 0 ? "no_such_circuit" : "paper";
        request.points.push_back((*points_)[(c + i) % points_->size()]);
        requests.push_back(std::move(request));
      }
      std::size_t sent = 0;
      std::size_t received = 0;
      while (received < requests.size()) {
        while (sent < requests.size() && sent - received < kWindow) {
          (void)client.send(requests[sent]);
          ++sent;
        }
        try {
          (void)client.receive();
        } catch (const RemoteError&) {
          // expected for the unknown-circuit requests
        }
        ++received;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  {
    // A well-framed diagnose frame with a garbage payload: counted as
    // received, answered with an error frame.  Read the answer before
    // closing so the send cannot race the disconnect.
    Socket socket = connect_tcp("127.0.0.1", server.port());
    socket.send_all(encode_frame(MessageType::kDiagnose, "garbage"));
    const auto frame = read_raw(socket);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->first.type,
              static_cast<std::uint8_t>(MessageType::kError));
  }
  {
    // Mid-frame disconnect with nothing in flight: neither a request
    // nor an error frame, so it must not disturb the identity.
    Socket socket = connect_tcp("127.0.0.1", server.port());
    socket.send_all("FTDN\x01");
  }

  // The reader threads notice the closed sockets asynchronously; poll
  // until every connection has drained.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().connections_open > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_open, 0u);
  EXPECT_EQ(stats.requests_received, kClients * kPerClient + 1);
  EXPECT_GT(stats.replies_sent, 0u);
  EXPECT_GT(stats.error_frames_sent, 0u);
  EXPECT_EQ(stats.requests_received,
            stats.replies_sent + stats.error_frames_sent);
}

TEST(NetServer, ConnectionLimitRejectsTheOverflowPeer) {
  if (!sockets_supported()) GTEST_SKIP() << "no socket support";
  service::DiagnosisService service;
  ServerOptions options;
  options.port = 0;
  options.max_connections = 1;
  Server server(service, options);

  Client first("127.0.0.1", server.port());
  first.ping();  // fully registered with the accept loop
  Socket second = connect_tcp("127.0.0.1", server.port());
  char header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(second.recv_exact(header_bytes, kFrameHeaderBytes));
  const FrameHeader header =
      decode_frame_header({header_bytes, kFrameHeaderBytes});
  EXPECT_EQ(header.type, static_cast<std::uint8_t>(MessageType::kError));
  EXPECT_EQ(server.stats().connections_rejected, 1u);
}

TEST(NetServer, StopUnblocksIdleConnections) {
  if (!sockets_supported()) GTEST_SKIP() << "no socket support";
  service::DiagnosisService service;
  auto server = std::make_unique<Server>(service, ServerOptions{});
  Client idle("127.0.0.1", server->port());
  idle.ping();
  server->stop();  // must join the idle connection's threads, not hang
  server.reset();
}

TEST(NetServer, OptionsValidated) {
  if (!sockets_supported()) GTEST_SKIP() << "no socket support";
  service::DiagnosisService service;
  ServerOptions zero_inflight;
  zero_inflight.max_inflight = 0;
  EXPECT_THROW(Server(service, zero_inflight), ConfigError);
}

}  // namespace
}  // namespace ftdiag::net
