#include "netlist/component.hpp"

#include <gtest/gtest.h>

namespace ftdiag::netlist {
namespace {

TEST(KindName, AllKindsNamed) {
  EXPECT_STREQ(kind_name(ComponentKind::kResistor), "resistor");
  EXPECT_STREQ(kind_name(ComponentKind::kCapacitor), "capacitor");
  EXPECT_STREQ(kind_name(ComponentKind::kInductor), "inductor");
  EXPECT_STREQ(kind_name(ComponentKind::kVoltageSource), "vsource");
  EXPECT_STREQ(kind_name(ComponentKind::kCurrentSource), "isource");
  EXPECT_STREQ(kind_name(ComponentKind::kVcvs), "vcvs");
  EXPECT_STREQ(kind_name(ComponentKind::kVccs), "vccs");
  EXPECT_STREQ(kind_name(ComponentKind::kCccs), "cccs");
  EXPECT_STREQ(kind_name(ComponentKind::kCcvs), "ccvs");
  EXPECT_STREQ(kind_name(ComponentKind::kIdealOpAmp), "ideal-opamp");
  EXPECT_STREQ(kind_name(ComponentKind::kOpAmp), "opamp");
}

TEST(IsPassive, OnlyRLC) {
  EXPECT_TRUE(is_passive(ComponentKind::kResistor));
  EXPECT_TRUE(is_passive(ComponentKind::kCapacitor));
  EXPECT_TRUE(is_passive(ComponentKind::kInductor));
  EXPECT_FALSE(is_passive(ComponentKind::kVoltageSource));
  EXPECT_FALSE(is_passive(ComponentKind::kVcvs));
  EXPECT_FALSE(is_passive(ComponentKind::kOpAmp));
}

TEST(TerminalCount, PerKind) {
  EXPECT_EQ(Component::terminal_count(ComponentKind::kResistor), 2u);
  EXPECT_EQ(Component::terminal_count(ComponentKind::kVoltageSource), 2u);
  EXPECT_EQ(Component::terminal_count(ComponentKind::kCccs), 2u);
  EXPECT_EQ(Component::terminal_count(ComponentKind::kVcvs), 4u);
  EXPECT_EQ(Component::terminal_count(ComponentKind::kVccs), 4u);
  EXPECT_EQ(Component::terminal_count(ComponentKind::kIdealOpAmp), 3u);
  EXPECT_EQ(Component::terminal_count(ComponentKind::kOpAmp), 3u);
}

TEST(OpAmpModel, PoleFrequency) {
  OpAmpModel model;
  model.dc_gain = 1e5;
  model.gbw_hz = 1e6;
  EXPECT_DOUBLE_EQ(model.pole_hz(), 10.0);
}

TEST(OpAmpModel, DefaultIsReasonable) {
  const OpAmpModel model;
  EXPECT_GT(model.dc_gain, 1e4);
  EXPECT_GT(model.gbw_hz, 1e5);
  EXPECT_GT(model.rin, 1e5);
  EXPECT_GE(model.rout, 0.0);
}

TEST(OpAmpParamName, AllParams) {
  EXPECT_STREQ(opamp_param_name(OpAmpParam::kDcGain), "ad0");
  EXPECT_STREQ(opamp_param_name(OpAmpParam::kGbw), "gbw");
  EXPECT_STREQ(opamp_param_name(OpAmpParam::kRin), "rin");
  EXPECT_STREQ(opamp_param_name(OpAmpParam::kRout), "rout");
}

TEST(Describe, ResistorShowsValue) {
  Component c;
  c.name = "R1";
  c.kind = ComponentKind::kResistor;
  c.nodes = {0, 1};
  c.value = 4700.0;
  const std::string s = c.describe();
  EXPECT_NE(s.find("resistor"), std::string::npos);
  EXPECT_NE(s.find("R1"), std::string::npos);
  EXPECT_NE(s.find("4.7k"), std::string::npos);
}

TEST(Describe, SourceShowsExcitation) {
  Component c;
  c.name = "V1";
  c.kind = ComponentKind::kVoltageSource;
  c.nodes = {1, 0};
  c.dc = 5.0;
  c.ac_magnitude = 1.0;
  const std::string s = c.describe();
  EXPECT_NE(s.find("dc=5"), std::string::npos);
  EXPECT_NE(s.find("ac=1"), std::string::npos);
}

TEST(Describe, OpAmpShowsMacroModel) {
  Component c;
  c.name = "OA1";
  c.kind = ComponentKind::kOpAmp;
  c.nodes = {0, 1, 2};
  const std::string s = c.describe();
  EXPECT_NE(s.find("ad0="), std::string::npos);
  EXPECT_NE(s.find("gbw="), std::string::npos);
}

}  // namespace
}  // namespace ftdiag::netlist
