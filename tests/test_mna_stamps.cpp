/// Validates every element stamp against hand-derived analytic answers on
/// minimal circuits.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mna/ac_analysis.hpp"
#include "mna/dc_analysis.hpp"
#include "mna/system.hpp"
#include "netlist/circuit.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {
namespace {

using netlist::Circuit;

TEST(System, UnknownNumbering) {
  Circuit c;
  c.add_vsource("V1", "a", "0", 0.0, 1.0);
  c.add_resistor("R1", "a", "b", 1e3);
  c.add_inductor("L1", "b", "0", 1e-3);
  const MnaSystem sys(c);
  // 2 node unknowns + V branch + L branch.
  EXPECT_EQ(sys.unknown_count(), 4u);
  EXPECT_EQ(sys.node_unknown_count(), 2u);
  EXPECT_EQ(sys.node_unknown(netlist::kGround), kNoUnknown);
  EXPECT_NE(sys.branch_unknown("V1"), sys.branch_unknown("L1"));
  EXPECT_THROW((void)sys.branch_unknown("R1"), CircuitError);
}

TEST(System, InvalidCircuitRejected) {
  Circuit c;
  c.add_vsource("V1", "a", "0", 0.0, 1.0);
  c.add_resistor("R1", "a", "floating", 1e3);
  EXPECT_THROW(MnaSystem{c}, CircuitError);
}

TEST(Stamp, ResistorDivider) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 3e3);
  c.add_resistor("R2", "out", "0", 1e3);
  AcAnalysis ac(c);
  EXPECT_NEAR(std::abs(ac.node_voltage(100.0, "out")), 0.25, 1e-12);
}

TEST(Stamp, RcLowPassCutoff) {
  // f_c = 1/(2 pi R C); |H(f_c)| = 1/sqrt(2), phase -45 deg.
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_capacitor("C1", "out", "0", 100e-9);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 100e-9);
  AcAnalysis ac(c);
  const Complex h = ac.node_voltage(fc, "out");
  EXPECT_NEAR(std::abs(h), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(linalg::phase_deg(h), -45.0, 1e-6);
}

TEST(Stamp, RlHighPass) {
  // V - R - L to ground; |H| = wL/sqrt(R^2 + (wL)^2).
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 100.0);
  c.add_inductor("L1", "out", "0", 10e-3);
  const double f = 1e3;
  const double wl = 2.0 * std::numbers::pi * f * 10e-3;
  AcAnalysis ac(c);
  EXPECT_NEAR(std::abs(ac.node_voltage(f, "out")),
              wl / std::hypot(100.0, wl), 1e-9);
}

TEST(Stamp, SeriesRlcResonance) {
  // At resonance the LC impedances cancel; the full source appears on R.
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_inductor("L1", "in", "a", 10e-3);
  c.add_capacitor("C1", "a", "b", 100e-9);
  c.add_resistor("R1", "b", "0", 50.0);
  const double f0 =
      1.0 / (2.0 * std::numbers::pi * std::sqrt(10e-3 * 100e-9));
  AcAnalysis ac(c);
  EXPECT_NEAR(std::abs(ac.node_voltage(f0, "b")), 1.0, 1e-6);
}

TEST(Stamp, CurrentSourceIntoResistor) {
  Circuit c;
  c.add_isource("I1", "0", "out", 0.0, 2e-3);  // 2 mA into "out"
  c.add_resistor("R1", "out", "0", 1e3);
  AcAnalysis ac(c);
  EXPECT_NEAR(std::abs(ac.node_voltage(10.0, "out")), 2.0, 1e-12);
}

TEST(Stamp, CurrentSourceSignConvention) {
  // I flows from + through the source to -, so (out, 0) pulls current OUT
  // of node "out": v = -I*R (phase 180).
  Circuit c;
  c.add_isource("I1", "out", "0", 0.0, 1e-3);
  c.add_resistor("R1", "out", "0", 1e3);
  AcAnalysis ac(c);
  const Complex v = ac.node_voltage(10.0, "out");
  EXPECT_NEAR(v.real(), -1.0, 1e-12);
}

TEST(Stamp, VcvsGain) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("Rin", "in", "0", 1e3);
  c.add_vcvs("E1", "out", "0", "in", "0", 7.5);
  c.add_resistor("RL", "out", "0", 1e3);
  AcAnalysis ac(c);
  EXPECT_NEAR(std::abs(ac.node_voltage(50.0, "out")), 7.5, 1e-12);
}

TEST(Stamp, VccsTransconductance) {
  // G from gnd->out with gm=1mS sensing in: v_out = gm * v_in * RL.
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("Rb", "in", "0", 1e6);
  c.add_vccs("G1", "0", "out", "in", "0", 1e-3);
  c.add_resistor("RL", "out", "0", 2e3);
  AcAnalysis ac(c);
  const Complex v = ac.node_voltage(50.0, "out");
  EXPECT_NEAR(v.real(), 2.0, 1e-9);
}

TEST(Stamp, CccsGain) {
  // Control current flows through V1: i = 1V/1k = 1mA; F injects 5x into RL.
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "0", 1e3);
  c.add_cccs("F1", "0", "out", "V1", 5.0);
  c.add_resistor("RL", "out", "0", 1e3);
  AcAnalysis ac(c);
  // i(V1) in MNA convention flows + -> - inside the source: -1 mA.
  EXPECT_NEAR(std::abs(ac.node_voltage(50.0, "out")), 5.0, 1e-9);
}

TEST(Stamp, CcvsTransresistance) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "0", 1e3);
  c.add_ccvs("H1", "out", "0", "V1", 2e3);
  c.add_resistor("RL", "out", "0", 1e3);
  AcAnalysis ac(c);
  // |v_out| = |r * i(V1)| = 2k * 1mA = 2.
  EXPECT_NEAR(std::abs(ac.node_voltage(50.0, "out")), 2.0, 1e-9);
}

TEST(Stamp, IdealOpAmpInvertingAmplifier) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "n", 1e3);
  c.add_resistor("R2", "n", "out", 4.7e3);
  c.add_ideal_opamp("OA1", "0", "n", "out");
  AcAnalysis ac(c);
  const Complex h = ac.node_voltage(100.0, "out");
  EXPECT_NEAR(std::abs(h), 4.7, 1e-9);
  EXPECT_NEAR(std::fabs(linalg::phase_deg(h)), 180.0, 1e-6);
  // Virtual ground holds.
  EXPECT_NEAR(std::abs(ac.node_voltage(100.0, "n")), 0.0, 1e-12);
}

TEST(Stamp, IdealOpAmpNonInvertingGain) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_ideal_opamp("OA1", "in", "fb", "out");
  c.add_resistor("R1", "fb", "0", 1e3);
  c.add_resistor("R2", "out", "fb", 9e3);
  AcAnalysis ac(c);
  EXPECT_NEAR(std::abs(ac.node_voltage(100.0, "out")), 10.0, 1e-9);
}

TEST(Stamp, AcPhaseOfSourceRespected) {
  Circuit c;
  c.add_vsource("V1", "out", "0", 0.0, 1.0, 90.0);
  c.add_resistor("R1", "out", "0", 1e3);
  AcAnalysis ac(c);
  const Complex v = ac.node_voltage(10.0, "out");
  EXPECT_NEAR(v.real(), 0.0, 1e-12);
  EXPECT_NEAR(v.imag(), 1.0, 1e-12);
}

TEST(Stamp, SuperpositionOfTwoSources) {
  Circuit c;
  c.add_vsource("V1", "a", "0", 0.0, 1.0);
  c.add_vsource("V2", "b", "0", 0.0, 2.0);
  c.add_resistor("R1", "a", "out", 1e3);
  c.add_resistor("R2", "b", "out", 1e3);
  c.add_resistor("R3", "out", "0", 1e12);
  AcAnalysis ac(c);
  // out = average of the two sources with matched resistors (unloaded).
  EXPECT_NEAR(std::abs(ac.node_voltage(10.0, "out")), 1.5, 1e-6);
}

}  // namespace
}  // namespace ftdiag::mna
