#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/logging.hpp"

namespace ftdiag {
namespace {

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
}

TEST(AsciiTable, RuleUnderHeader) {
  AsciiTable t({"x"});
  t.add_row({"1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("|---|"), std::string::npos);
}

TEST(AsciiTable, ShortRowsPadded) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NE(t.str().find("| 1 |"), std::string::npos);
}

TEST(AsciiTable, LongRowsTruncated) {
  AsciiTable t({"a"});
  t.add_row({"1", "overflow"});
  EXPECT_EQ(t.str().find("overflow"), std::string::npos);
}

TEST(AsciiTable, NumericRowFormatting) {
  AsciiTable t({"x", "y"});
  t.add_numeric_row({1.23456789, 1e-6});
  const std::string s = t.str();
  EXPECT_NE(s.find("1.235"), std::string::npos);
  EXPECT_NE(s.find("1e-06"), std::string::npos);
}

TEST(AsciiTable, LabeledRow) {
  AsciiTable t({"case", "a", "b"});
  t.add_labeled_row("run1", {2.0, 3.0});
  const std::string s = t.str();
  EXPECT_NE(s.find("run1"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(AsciiTable, PrintWithTitle) {
  AsciiTable t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os, "my table");
  EXPECT_NE(os.str().find("== my table =="), std::string::npos);
}

TEST(AsciiTable, EmptyTableStillRendersHeader) {
  AsciiTable t({"col"});
  EXPECT_NE(t.str().find("col"), std::string::npos);
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(Logging, LevelFiltering) {
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  log::info("this must be dropped (not crash)");
  log::set_level(log::Level::kWarn);  // restore default
}

}  // namespace
}  // namespace ftdiag
