#include "mna/dc_analysis.hpp"

#include <gtest/gtest.h>

#include "netlist/circuit.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {
namespace {

TEST(DcAnalysis, ResistorDivider) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 10.0);
  c.add_resistor("R1", "in", "out", 3e3);
  c.add_resistor("R2", "out", "0", 1e3);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("out"), 2.5, 1e-12);
  EXPECT_NEAR(dc.node_voltage("in"), 10.0, 1e-12);
}

TEST(DcAnalysis, CapacitorIsOpen) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 5.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_capacitor("C1", "out", "0", 1e-6);
  c.add_resistor("R2", "out", "0", 1e6);
  DcAnalysis dc(c);
  // Nearly no drop across R1 (only the 1M leak draws current).
  EXPECT_NEAR(dc.node_voltage("out"), 5.0 * 1e6 / (1e6 + 1e3), 1e-9);
}

TEST(DcAnalysis, InductorIsShort) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 4.0);
  c.add_resistor("R1", "in", "mid", 1e3);
  c.add_inductor("L1", "mid", "out", 10e-3);
  c.add_resistor("R2", "out", "0", 1e3);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("mid"), dc.node_voltage("out"), 1e-12);
  EXPECT_NEAR(dc.node_voltage("out"), 2.0, 1e-12);
}

TEST(DcAnalysis, BranchCurrentOfSource) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 10.0);
  c.add_resistor("R1", "in", "0", 2e3);
  DcAnalysis dc(c);
  // Branch current flows + -> - through the source: -5 mA.
  EXPECT_NEAR(dc.branch_current("V1"), -5e-3, 1e-12);
}

TEST(DcAnalysis, InductorBranchCurrent) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 1.0);
  c.add_inductor("L1", "in", "out", 1e-3);
  c.add_resistor("R1", "out", "0", 100.0);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.branch_current("L1"), 10e-3, 1e-9);
}

TEST(DcAnalysis, CurrentSourceDcValue) {
  netlist::Circuit c;
  c.add_isource("I1", "0", "out", 1e-3);
  c.add_resistor("R1", "out", "0", 1e3);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("out"), 1.0, 1e-12);
}

TEST(DcAnalysis, IdealOpAmpDcOperatingPoint) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 2.0);
  c.add_resistor("R1", "in", "n", 1e3);
  c.add_resistor("R2", "n", "out", 2e3);
  c.add_ideal_opamp("OA1", "0", "n", "out");
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("out"), -4.0, 1e-9);
  EXPECT_NEAR(dc.node_voltage("n"), 0.0, 1e-12);
}

TEST(DcAnalysis, AcOnlySourceGivesZeroDc) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_resistor("R2", "out", "0", 1e3);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("out"), 0.0, 1e-15);
}

TEST(DcAnalysis, FloatingNodeThroughCapacitorIsSingular) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 1.0);
  c.add_capacitor("C1", "in", "island", 1e-9);
  c.add_capacitor("C2", "island", "0", 1e-9);
  DcAnalysis dc(c);
  EXPECT_THROW(dc.solve(), NumericError);
}

}  // namespace
}  // namespace ftdiag::mna
