#include "mna/dc_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/ladders.hpp"
#include "circuits/registry.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "netlist/circuit.hpp"
#include "util/error.hpp"

namespace ftdiag::mna {
namespace {

TEST(DcAnalysis, ResistorDivider) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 10.0);
  c.add_resistor("R1", "in", "out", 3e3);
  c.add_resistor("R2", "out", "0", 1e3);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("out"), 2.5, 1e-12);
  EXPECT_NEAR(dc.node_voltage("in"), 10.0, 1e-12);
}

TEST(DcAnalysis, CapacitorIsOpen) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 5.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_capacitor("C1", "out", "0", 1e-6);
  c.add_resistor("R2", "out", "0", 1e6);
  DcAnalysis dc(c);
  // Nearly no drop across R1 (only the 1M leak draws current).
  EXPECT_NEAR(dc.node_voltage("out"), 5.0 * 1e6 / (1e6 + 1e3), 1e-9);
}

TEST(DcAnalysis, InductorIsShort) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 4.0);
  c.add_resistor("R1", "in", "mid", 1e3);
  c.add_inductor("L1", "mid", "out", 10e-3);
  c.add_resistor("R2", "out", "0", 1e3);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("mid"), dc.node_voltage("out"), 1e-12);
  EXPECT_NEAR(dc.node_voltage("out"), 2.0, 1e-12);
}

TEST(DcAnalysis, BranchCurrentOfSource) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 10.0);
  c.add_resistor("R1", "in", "0", 2e3);
  DcAnalysis dc(c);
  // Branch current flows + -> - through the source: -5 mA.
  EXPECT_NEAR(dc.branch_current("V1"), -5e-3, 1e-12);
}

TEST(DcAnalysis, InductorBranchCurrent) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 1.0);
  c.add_inductor("L1", "in", "out", 1e-3);
  c.add_resistor("R1", "out", "0", 100.0);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.branch_current("L1"), 10e-3, 1e-9);
}

TEST(DcAnalysis, CurrentSourceDcValue) {
  netlist::Circuit c;
  c.add_isource("I1", "0", "out", 1e-3);
  c.add_resistor("R1", "out", "0", 1e3);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("out"), 1.0, 1e-12);
}

TEST(DcAnalysis, IdealOpAmpDcOperatingPoint) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 2.0);
  c.add_resistor("R1", "in", "n", 1e3);
  c.add_resistor("R2", "n", "out", 2e3);
  c.add_ideal_opamp("OA1", "0", "n", "out");
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("out"), -4.0, 1e-9);
  EXPECT_NEAR(dc.node_voltage("n"), 0.0, 1e-12);
}

TEST(DcAnalysis, AcOnlySourceGivesZeroDc) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "out", 1e3);
  c.add_resistor("R2", "out", "0", 1e3);
  DcAnalysis dc(c);
  EXPECT_NEAR(dc.node_voltage("out"), 0.0, 1e-15);
}

// Solve the same assembled DC system with both backends and require
// agreement to 1e-9 relative, regardless of which one DcAnalysis picked.
void expect_dense_matches_sparse(const netlist::Circuit& circuit,
                                 const std::string& context) {
  const DcAnalysis dc(circuit);
  const std::size_t n = dc.system().unknown_count();
  linalg::CooMatrix<double> matrix(n, n);
  std::vector<double> rhs(n, 0.0);
  dc.system().assemble_dc(matrix, rhs);
  std::vector<double> dense;
  try {
    dense = linalg::LuFactorization<double>(matrix.to_dense()).solve(rhs);
  } catch (const NumericError&) {
    // DC-singular circuit: both backends must agree on that, too.
    EXPECT_THROW((void)linalg::SparseLu<double>(matrix), NumericError)
        << context;
    return;
  }
  const auto sparse = linalg::SparseLu<double>(matrix).solve(rhs);
  const auto via_analysis = dc.solve();
  double scale = 0.0;
  for (const double v : dense) scale = std::max(scale, std::fabs(v));
  if (scale == 0.0) scale = 1.0;
  ASSERT_EQ(dense.size(), sparse.size()) << context;
  ASSERT_EQ(dense.size(), via_analysis.size()) << context;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_NEAR(dense[i], sparse[i], 1e-9 * scale)
        << context << " unknown " << i;
    EXPECT_NEAR(dense[i], via_analysis[i], 1e-9 * scale)
        << context << " unknown " << i;
  }
}

TEST(DcAnalysis, DenseAndSparseBackendsAgreeOnRegistry) {
  for (const auto& name : circuits::registry_names()) {
    const auto cut = circuits::make_by_name(name);
    expect_dense_matches_sparse(cut.circuit, name);
  }
}

TEST(DcAnalysis, DenseAndSparseBackendsAgreeBeyondDenseLimit) {
  // 400 sections -> well past SweepAssembler::kDenseLimit, so
  // DcAnalysis::solve() itself takes the sparse branch here.
  circuits::RcLadderDesign design;
  design.sections = 400;
  design.testable_stride = 100;
  const auto cut = circuits::make_rc_ladder(design);
  ASSERT_GT(DcAnalysis(cut.circuit).system().unknown_count(),
            SweepAssembler::kDenseLimit);
  expect_dense_matches_sparse(cut.circuit, "rc_ladder_400");
}

TEST(DcAnalysis, FloatingNodeThroughCapacitorIsSingular) {
  netlist::Circuit c;
  c.add_vsource("V1", "in", "0", 1.0);
  c.add_capacitor("C1", "in", "island", 1e-9);
  c.add_capacitor("C2", "island", "0", 1e-9);
  DcAnalysis dc(c);
  EXPECT_THROW(dc.solve(), NumericError);
}

}  // namespace
}  // namespace ftdiag::mna
