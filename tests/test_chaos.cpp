/// Resilience-layer tests: the chaos injector itself (spec parsing,
/// deterministic sampling, delay injection), crash-safe durable writes
/// (torn-write recovery, stale tmp cleanup, quarantine + bit-identical
/// rebuild at every truncation boundary), client deadlines against a
/// stalled server, retry with backoff across sheds and dropped
/// connections, service-level overload shedding and deadline expiry, and
/// graceful drain — all driven through the same injection points the
/// `FTDIAG_CHAOS` environment variable arms in production builds.
#include "chaos/chaos.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "circuits/nf_biquad.hpp"
#include "io/binary.hpp"
#include "io/dictionary_io.hpp"
#include "io/durable_file.hpp"
#include "mna/frequency_grid.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "service/diagnosis_service.hpp"
#include "service/dictionary_store.hpp"
#include "session.hpp"
#include "util/error.hpp"

namespace ftdiag {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// RAII guard: every test that arms the process-wide injector disarms it
/// on the way out, even through an ASSERT failure.
struct ChaosGuard {
  explicit ChaosGuard(const std::string& spec, std::uint64_t seed = 0) {
    chaos::Injector::global().reseed(seed);
    chaos::Injector::global().configure(spec);
  }
  ~ChaosGuard() { chaos::Injector::global().clear(); }
};

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------------- parsing

TEST(ChaosSpec, DurationValuesParse) {
  EXPECT_EQ(chaos::parse_injection_value("50ms").delay, 50000us);
  EXPECT_EQ(chaos::parse_injection_value("200us").delay, 200us);
  EXPECT_EQ(chaos::parse_injection_value("1.5s").delay, 1500000us);
  // A duration-valued point fires on every hit.
  EXPECT_EQ(chaos::parse_injection_value("50ms").probability, 1.0);
}

TEST(ChaosSpec, ProbabilityValuesParse) {
  EXPECT_EQ(chaos::parse_injection_value("0.25").probability, 0.25);
  EXPECT_EQ(chaos::parse_injection_value("0").probability, 0.0);
  EXPECT_EQ(chaos::parse_injection_value("1").probability, 1.0);
  EXPECT_EQ(chaos::parse_injection_value("0.25").delay, 0us);
}

TEST(ChaosSpec, MalformedValuesThrow) {
  EXPECT_THROW((void)chaos::parse_injection_value(""), ConfigError);
  EXPECT_THROW((void)chaos::parse_injection_value("abc"), ConfigError);
  EXPECT_THROW((void)chaos::parse_injection_value("50xs"), ConfigError);
  EXPECT_THROW((void)chaos::parse_injection_value("-0.5"), ConfigError);
  EXPECT_THROW((void)chaos::parse_injection_value("1.5"), ConfigError);
}

TEST(ChaosSpec, MalformedSpecKeepsPreviousTable) {
  ChaosGuard guard("a.point:1");
  EXPECT_TRUE(chaos::Injector::global().enabled());
  EXPECT_THROW(chaos::Injector::global().configure("a.point"), ConfigError);
  EXPECT_THROW(chaos::Injector::global().configure("a.point:2.0"),
               ConfigError);
  // The good table survived the bad configure attempts.
  EXPECT_TRUE(chaos::Injector::global().hit("a.point"));
}

// ------------------------------------------------------------ injector

TEST(ChaosInjector, DisabledByDefaultAndAfterClear) {
  auto& injector = chaos::Injector::global();
  injector.clear();
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.hit("net.recv_delay"));
  {
    ChaosGuard guard("net.recv_delay:0");
    EXPECT_TRUE(injector.enabled());
  }
  EXPECT_FALSE(injector.enabled());
}

TEST(ChaosInjector, CertainAndImpossiblePoints) {
  ChaosGuard guard("always.fires:1,never.fires:0");
  auto& injector = chaos::Injector::global();
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(injector.hit("always.fires"));
    EXPECT_FALSE(injector.hit("never.fires"));
    EXPECT_FALSE(injector.hit("unknown.point"));
  }
  EXPECT_EQ(injector.fired("always.fires"), 64u);
  EXPECT_EQ(injector.fired("never.fires"), 0u);
}

TEST(ChaosInjector, SamplingIsSeedDeterministic) {
  auto sample = [](std::uint64_t seed) {
    ChaosGuard guard("coin.flip:0.5", seed);
    std::vector<bool> outcomes;
    for (int i = 0; i < 256; ++i) {
      outcomes.push_back(chaos::Injector::global().hit("coin.flip"));
    }
    return outcomes;
  };
  const auto first = sample(42);
  const auto again = sample(42);
  const auto other = sample(43);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);
  const auto fired = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  // A fair-ish coin: neither degenerate outcome.
  EXPECT_GT(fired, 64u);
  EXPECT_LT(fired, 192u);
}

TEST(ChaosInjector, DelayPointsSleep) {
  ChaosGuard guard("slow.point:20ms");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(chaos::Injector::global().hit("slow.point"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 15ms);
}

// -------------------------------------------------------- durable file

TEST(DurableFile, WritePublishesAtomicallyAndCleansTmp) {
  const std::string dir = fresh_dir("ftdiag_durable_write");
  const std::string path = dir + "/artifact.fdx";
  io::write_file_durable(path, "payload bytes");
  EXPECT_EQ(slurp(path), "payload bytes");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  // Overwrite through the same path: readers only ever see whole files.
  io::write_file_durable(path, "second generation");
  EXPECT_EQ(slurp(path), "second generation");
}

TEST(DurableFile, StaleTmpSweepRemovesOnlyDebris) {
  const std::string dir = fresh_dir("ftdiag_tmp_sweep");
  std::ofstream(dir + "/a.fdx.tmp") << "torn";
  std::ofstream(dir + "/b.tmp") << "torn";
  std::ofstream(dir + "/keep.fdx") << "real";
  EXPECT_EQ(io::remove_stale_tmp_files(dir), 2u);
  EXPECT_FALSE(fs::exists(dir + "/a.fdx.tmp"));
  EXPECT_TRUE(fs::exists(dir + "/keep.fdx"));
  EXPECT_EQ(io::remove_stale_tmp_files(dir), 0u);
  EXPECT_EQ(io::remove_stale_tmp_files(dir + "/missing"), 0u);
}

TEST(DurableFile, TornWriteChaosTruncatesTheImage) {
  const std::string dir = fresh_dir("ftdiag_torn_write");
  const std::string path = dir + "/artifact.fdx";
  const std::string bytes(4096, 'x');
  ChaosGuard guard("io.torn_write:1");
  io::write_file_durable(path, bytes);
  ASSERT_TRUE(fs::exists(path));
  const auto written = fs::file_size(path);
  EXPECT_GT(written, 0u);
  EXPECT_LT(written, bytes.size());
  EXPECT_GE(chaos::Injector::global().fired("io.torn_write"), 1u);
}

// ---------------------------------------------------- store quarantine

circuits::CircuitUnderTest small_cut() {
  auto cut = circuits::make_paper_cut();
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(100.0, 10000.0, 8);
  return cut;
}

faults::DeviationSpec coarse_spec() {
  faults::DeviationSpec spec;
  spec.step_fraction = 0.2;
  return spec;
}

/// Build once into a fresh store dir and return the clean artifact bytes
/// and path.
std::pair<std::string, std::string> build_clean_artifact(
    const std::string& dir, const circuits::CircuitUnderTest& cut) {
  service::StoreOptions options;
  options.root_dir = dir;
  service::DictionaryStore store(options);
  (void)store.get(cut, coarse_spec());
  const std::string path = store.path_for(
      dictionary_cache_key(cut, coarse_spec(), faults::SimOptions{}));
  return {path, slurp(path)};
}

TEST(StoreQuarantine, TruncationAtEveryBlockBoundaryRebuildsBitIdentical) {
  const std::string dir = fresh_dir("ftdiag_quarantine_truncate");
  const auto cut = small_cut();
  const auto [path, clean] = build_clean_artifact(dir, cut);
  ASSERT_FALSE(clean.empty());

  const io::BinaryDictionaryLayout layout =
      io::parse_binary_dictionary_layout(clean);
  // A crash can tear the image anywhere; the block boundaries are the
  // interesting seams (valid header, missing data) plus the degenerate
  // empty and bad-magic-prefix cases.
  const std::vector<std::size_t> boundaries = {
      0, 2, layout.frequencies_offset, layout.golden_offset,
      layout.responses_offset, clean.size() - 1};
  for (const std::size_t keep : boundaries) {
    ASSERT_LT(keep, clean.size());
    { std::ofstream(path, std::ios::binary) << clean.substr(0, keep); }
    fs::remove(path + ".corrupt");

    service::StoreOptions options;
    options.root_dir = dir;
    service::DictionaryStore store(options);
    const auto rebuilt = store.get(cut, coarse_spec());
    ASSERT_NE(rebuilt, nullptr) << "truncated at " << keep;

    const auto stats = store.stats();
    EXPECT_EQ(stats.invalid_files, 1u) << "truncated at " << keep;
    EXPECT_EQ(stats.quarantined, 1u) << "truncated at " << keep;
    EXPECT_EQ(stats.builds, 1u) << "truncated at " << keep;
    // The corrupt image is preserved for forensics, never trusted...
    EXPECT_TRUE(fs::exists(path + ".corrupt")) << "truncated at " << keep;
    EXPECT_EQ(slurp(path + ".corrupt"), clean.substr(0, keep));
    // ...and the rebuilt artifact is bit-identical to the clean one.
    EXPECT_EQ(slurp(path), clean) << "truncated at " << keep;
  }
}

TEST(StoreQuarantine, CorruptedChecksumQuarantinesAndRebuilds) {
  const std::string dir = fresh_dir("ftdiag_quarantine_flip");
  const auto cut = small_cut();
  const auto [path, clean] = build_clean_artifact(dir, cut);

  std::string flipped = clean;
  flipped[flipped.size() / 2] ^= 0x40;  // corrupt a data byte mid-image
  { std::ofstream(path, std::ios::binary) << flipped; }

  service::StoreOptions options;
  options.root_dir = dir;
  service::DictionaryStore store(options);
  (void)store.get(cut, coarse_spec());
  EXPECT_EQ(store.stats().quarantined, 1u);
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  EXPECT_EQ(slurp(path), clean);
}

TEST(StoreQuarantine, StartupSweepsStaleTmpFiles) {
  const std::string dir = fresh_dir("ftdiag_store_tmp_sweep");
  std::ofstream(dir + "/crashed_writer.fdx.tmp") << "half an artifact";
  service::StoreOptions options;
  options.root_dir = dir;
  service::DictionaryStore store(options);
  EXPECT_FALSE(fs::exists(dir + "/crashed_writer.fdx.tmp"));
}

TEST(StoreQuarantine, TornPersistRecoversOnTheNextOpen) {
  // `io.torn_write` publishes a truncated image under the final name —
  // the worst case: the rename survived a crash whose data did not.  A
  // fresh store must quarantine it and rebuild.
  const std::string dir = fresh_dir("ftdiag_torn_persist");
  const auto cut = small_cut();
  std::string path;
  {
    ChaosGuard guard("io.torn_write:1");
    service::StoreOptions options;
    options.root_dir = dir;
    service::DictionaryStore store(options);
    (void)store.get(cut, coarse_spec());
    path = store.path_for(
        dictionary_cache_key(cut, coarse_spec(), faults::SimOptions{}));
  }
  service::StoreOptions options;
  options.root_dir = dir;
  service::DictionaryStore store(options);
  const auto rebuilt = store.get(cut, coarse_spec());
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(store.stats().builds, 1u);
  const io::BinaryDictionaryLayout layout =
      io::parse_binary_dictionary_layout(slurp(path));
  EXPECT_EQ(layout.header.fault_count, rebuilt->fault_count());
}

// ------------------------------------------------------- wire v1 <-> v2

TEST(WireCompat, V1DiagnosePayloadStillDecodes) {
  service::DiagnosisRequest request;
  request.circuit = "paper";
  request.points.push_back(core::Point{0.125, -0.25});
  request.deadline_ms = 750;
  request.priority = 3;

  const std::string v2 = net::encode_diagnose(7, request);
  // The v2 payload carries deadline_ms (u32) + priority (u8) right after
  // the request id; a v1 peer's payload is exactly that minus the two
  // fields.
  const std::string v1 = v2.substr(0, 8) + v2.substr(13);

  const net::DecodedDiagnose decoded = net::decode_diagnose(v1, 1);
  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(decoded.request.circuit, "paper");
  EXPECT_EQ(decoded.request.deadline_ms, 0u);
  EXPECT_EQ(decoded.request.priority, 0);

  const net::DecodedDiagnose roundtrip = net::decode_diagnose(v2);
  EXPECT_EQ(roundtrip.request.deadline_ms, 750u);
  EXPECT_EQ(roundtrip.request.priority, 3);
}

TEST(WireCompat, HeaderAcceptsV1RejectsUnknownVersions) {
  auto header_with_version = [](std::uint8_t version) {
    std::string bytes;
    bytes.append("FTDN", 4);
    io::put_u8(bytes, version);
    io::put_u8(bytes, static_cast<std::uint8_t>(net::MessageType::kPing));
    io::put_u16(bytes, 0);
    io::put_u32(bytes, 0);
    return bytes;
  };
  EXPECT_EQ(net::decode_frame_header(header_with_version(1)).version, 1);
  EXPECT_EQ(net::decode_frame_header(header_with_version(2)).version, 2);
  EXPECT_THROW((void)net::decode_frame_header(header_with_version(0)),
               ParseError);
  EXPECT_THROW((void)net::decode_frame_header(header_with_version(3)),
               ParseError);
}

// --------------------------------------------------- client resilience

service::DiagnosisRequest tiny_request() {
  service::DiagnosisRequest request;
  request.circuit = "paper";
  request.points.push_back(core::Point{0.1, 0.2});
  return request;
}

/// Read one whole frame off a raw server-side socket; nullopt on EOF.
std::optional<std::pair<net::FrameHeader, std::string>> read_raw(
    net::Socket& socket) {
  char header_bytes[net::kFrameHeaderBytes];
  if (!socket.recv_exact(header_bytes, net::kFrameHeaderBytes)) {
    return std::nullopt;
  }
  const net::FrameHeader header =
      net::decode_frame_header({header_bytes, net::kFrameHeaderBytes});
  std::string payload(header.payload_size, '\0');
  if (header.payload_size > 0 &&
      !socket.recv_exact(payload.data(), payload.size())) {
    return std::nullopt;
  }
  return std::make_pair(header, std::move(payload));
}

TEST(ClientResilience, RequestTimeoutAgainstStalledServer) {
  if (!net::sockets_supported()) GTEST_SKIP() << "no socket support";
  net::Listener listener = net::Listener::bind("127.0.0.1", 0);
  std::promise<void> release;
  auto released = release.get_future().share();
  std::thread stalled([&] {
    // Accept, read the request, then go silent: the pathological peer
    // that holds the connection open without ever answering.
    net::Socket conn = listener.accept();
    if (conn.valid()) (void)read_raw(conn);
    released.wait();
  });

  net::ClientOptions options;
  options.connect_timeout = 2000ms;
  options.request_timeout = 200ms;
  net::Client client("127.0.0.1", listener.port(), options);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.diagnose(tiny_request()), net::TimeoutError);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, 150ms);
  EXPECT_LT(elapsed, 5s);  // bounded: the whole point of the deadline

  release.set_value();
  listener.close();
  stalled.join();
}

TEST(ClientResilience, RetriesAcrossOverloadShedsOnTheSameConnection) {
  if (!net::sockets_supported()) GTEST_SKIP() << "no socket support";
  net::Listener listener = net::Listener::bind("127.0.0.1", 0);
  std::thread shedding_server([&] {
    net::Socket conn = listener.accept();
    ASSERT_TRUE(conn.valid());
    // Shed the first two attempts politely, then answer the third — all
    // on the one connection, as a real admission-control shed would.
    for (int attempt = 0; attempt < 3; ++attempt) {
      auto frame = read_raw(conn);
      ASSERT_TRUE(frame.has_value());
      const net::DecodedDiagnose decoded =
          net::decode_diagnose(frame->second, frame->first.version);
      if (attempt < 2) {
        conn.send_all(net::encode_frame(
            net::MessageType::kOverloaded,
            net::encode_error(decoded.request_id, "queue full, retry")));
      } else {
        conn.send_all(net::encode_frame(
            net::MessageType::kDiagnoseReply,
            net::encode_reply(decoded.request_id,
                              service::DiagnosisReply{})));
      }
    }
  });

  net::ClientOptions options;
  options.request_timeout = 5000ms;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = 1ms;
  options.retry.max_backoff = 5ms;
  net::Client client("127.0.0.1", listener.port(), options);
  const service::DiagnosisReply reply = client.diagnose(tiny_request());
  EXPECT_TRUE(reply.results.empty());
  EXPECT_EQ(client.retries_used(), 2u);
  listener.close();
  shedding_server.join();
}

TEST(ClientResilience, ReconnectsAfterDroppedConnection) {
  if (!net::sockets_supported()) GTEST_SKIP() << "no socket support";
  net::Listener listener = net::Listener::bind("127.0.0.1", 0);
  std::thread flaky_server([&] {
    // First connection: slam the door mid-request.  Second connection:
    // behave.  The client must reconnect transparently.
    net::Socket first = listener.accept();
    ASSERT_TRUE(first.valid());
    (void)read_raw(first);
    first.close();
    net::Socket second = listener.accept();
    ASSERT_TRUE(second.valid());
    auto frame = read_raw(second);
    ASSERT_TRUE(frame.has_value());
    const net::DecodedDiagnose decoded =
        net::decode_diagnose(frame->second, frame->first.version);
    second.send_all(net::encode_frame(
        net::MessageType::kDiagnoseReply,
        net::encode_reply(decoded.request_id, service::DiagnosisReply{})));
  });

  net::ClientOptions options;
  options.request_timeout = 5000ms;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = 1ms;
  net::Client client("127.0.0.1", listener.port(), options);
  (void)client.diagnose(tiny_request());
  EXPECT_GE(client.retries_used(), 1u);
  listener.close();
  flaky_server.join();
}

TEST(ClientResilience, ExhaustedRetriesSurfaceTheLastError) {
  if (!net::sockets_supported()) GTEST_SKIP() << "no socket support";
  net::Listener listener = net::Listener::bind("127.0.0.1", 0);
  std::atomic<bool> stop{false};
  std::thread always_shedding([&] {
    while (!stop.load()) {
      net::Socket conn = listener.accept();
      if (!conn.valid()) return;
      while (auto frame = read_raw(conn)) {
        const net::DecodedDiagnose decoded =
            net::decode_diagnose(frame->second, frame->first.version);
        conn.send_all(net::encode_frame(
            net::MessageType::kOverloaded,
            net::encode_error(decoded.request_id, "still overloaded")));
      }
    }
  });

  net::ClientOptions options;
  options.request_timeout = 5000ms;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = 1ms;
  net::Client client("127.0.0.1", listener.port(), options);
  EXPECT_THROW((void)client.diagnose(tiny_request()), net::OverloadedError);
  EXPECT_EQ(client.retries_used(), 2u);  // attempts 2 and 3
  stop.store(true);
  client.close();  // unblocks the server's read loop
  listener.close();
  always_shedding.join();
}

TEST(ClientResilience, RetryBudgetCapsLifetimeRetries) {
  if (!net::sockets_supported()) GTEST_SKIP() << "no socket support";
  net::Listener listener = net::Listener::bind("127.0.0.1", 0);
  std::atomic<bool> stop{false};
  std::thread always_shedding([&] {
    while (!stop.load()) {
      net::Socket conn = listener.accept();
      if (!conn.valid()) return;
      while (auto frame = read_raw(conn)) {
        const net::DecodedDiagnose decoded =
            net::decode_diagnose(frame->second, frame->first.version);
        conn.send_all(net::encode_frame(
            net::MessageType::kOverloaded,
            net::encode_error(decoded.request_id, "overloaded")));
      }
    }
  });

  net::ClientOptions options;
  options.request_timeout = 5000ms;
  options.retry.max_attempts = 10;
  options.retry.initial_backoff = 1ms;
  options.retry.budget = 3;  // the lifetime cap binds before max_attempts
  net::Client client("127.0.0.1", listener.port(), options);
  EXPECT_THROW((void)client.diagnose(tiny_request()), net::OverloadedError);
  EXPECT_THROW((void)client.diagnose(tiny_request()), net::OverloadedError);
  EXPECT_EQ(client.retries_used(), 3u);
  stop.store(true);
  client.close();  // unblocks the server's read loop
  listener.close();
  always_shedding.join();
}

// -------------------------------------------------- service resilience

/// One small live session shared by the service/server-level tests.
class ServiceResilienceTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    auto cut = circuits::make_paper_cut();
    cut.dictionary_grid = mna::FrequencyGrid::log_sweep(100.0, 10000.0, 16);
    faults::DeviationSpec spec;
    spec.step_fraction = 0.2;
    session_ = new Session(SessionBuilder(cut).deviations(spec).build());
    session_->use_vector(core::TestVector{{700.0, 1600.0}});
  }
  static void TearDownTestSuite() {
    delete session_;
    session_ = nullptr;
  }

  static service::DiagnosisRequest request_with(std::uint32_t deadline_ms,
                                                std::uint8_t priority) {
    service::DiagnosisRequest request;
    request.circuit = "paper";
    request.points.push_back(core::Point{0.05, -0.05});
    request.deadline_ms = deadline_ms;
    request.priority = priority;
    return request;
  }

  static Session* session_;
};

Session* ServiceResilienceTest::session_ = nullptr;

TEST_F(ServiceResilienceTest, ShedHighWaterRejectsOnlyPriorityZero) {
  // One worker, one-request batches, and a slow solve: the first request
  // occupies the worker while the second sits in the queue, so the third
  // submit sees the high-water mark.
  ChaosGuard guard("engine.solve_delay:100ms");
  service::ServiceOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.shed_high_water = 1;
  service::DiagnosisService service(options);
  service.add_session("paper", *session_);

  auto first = service.submit(request_with(0, 0));
  // Wait until the worker has dequeued the first request (queue empty)
  // so the timeline below is deterministic.
  for (int i = 0; i < 500 && service.stats().queue_depth > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  auto second = service.submit(request_with(0, 0));  // queued: depth 1
  EXPECT_THROW((void)service.submit(request_with(0, 0)),
               OverloadError);  // priority 0 over the mark: shed
  auto third = service.submit(request_with(0, 1));  // priority 1: admitted

  (void)first.get();
  (void)second.get();
  (void)third.get();
  const auto stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST_F(ServiceResilienceTest, ExpiredDeadlineFailsBeforeTheSolve) {
  ChaosGuard guard("engine.solve_delay:100ms");
  service::ServiceOptions options;
  options.workers = 1;
  options.max_batch = 1;
  service::DiagnosisService service(options);
  service.add_session("paper", *session_);

  auto slow = service.submit(request_with(0, 0));
  for (int i = 0; i < 500 && service.stats().queue_depth > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  // 1 ms of budget, stuck behind a 100 ms solve: must expire in the
  // queue and never reach its own solve.
  auto doomed = service.submit(request_with(1, 0));
  (void)slow.get();
  EXPECT_THROW((void)doomed.get(), DeadlineError);
  EXPECT_EQ(service.stats().deadline_expired, 1u);
}

TEST_F(ServiceResilienceTest, InjectedSolveFailureFailsTheBatchNotTheService) {
  service::DiagnosisService service;
  service.add_session("paper", *session_);
  {
    ChaosGuard guard("engine.solve_fail:1");
    EXPECT_THROW((void)service.submit(request_with(0, 0)).get(),
                 NumericError);
  }
  // Chaos off: the same service keeps serving.
  const auto reply = service.submit(request_with(0, 0)).get();
  EXPECT_EQ(reply.results.size(), 1u);
}

TEST_F(ServiceResilienceTest, ServerAnswersShedsWithOverloadedFrames) {
  if (!net::sockets_supported()) GTEST_SKIP() << "no socket support";
  ChaosGuard guard("engine.solve_delay:100ms");
  service::ServiceOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.shed_high_water = 1;
  service::DiagnosisService service(options);
  service.add_session("paper", *session_);
  net::Server server(service, {});

  // Pipeline a burst bigger than worker + queue can hold: some requests
  // come back as replies, the overflow as kOverloaded frames — and every
  // request is answered exactly once.
  constexpr std::size_t kBurst = 8;
  net::Client client("127.0.0.1", server.port());
  for (std::size_t i = 0; i < kBurst; ++i) {
    (void)client.send(request_with(0, 0));
  }
  std::size_t replies = 0;
  std::size_t sheds = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    try {
      (void)client.receive();
      ++replies;
    } catch (const net::OverloadedError&) {
      ++sheds;
    }
  }
  EXPECT_EQ(replies + sheds, kBurst);
  EXPECT_GE(sheds, 1u);  // the burst must overflow a depth-1 high water
  client.close();

  // The counter identity holds with shedding active.
  for (int i = 0; i < 500 && server.stats().connections_open > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests_received, kBurst);
  EXPECT_EQ(stats.replies_sent + stats.error_frames_sent, kBurst);
  EXPECT_EQ(stats.overloaded_sent, sheds);
  EXPECT_EQ(stats.replies_sent, replies);
}

TEST_F(ServiceResilienceTest, DrainFlushesInFlightRepliesThenCloses) {
  if (!net::sockets_supported()) GTEST_SKIP() << "no socket support";
  ChaosGuard guard("engine.solve_delay:100ms");
  service::DiagnosisService service;
  service.add_session("paper", *session_);
  auto server = std::make_unique<net::Server>(service, net::ServerOptions{});

  net::Client client("127.0.0.1", server->port());
  (void)client.send(request_with(0, 0));
  // Let the request reach the service before draining.
  for (int i = 0; i < 500 && server->stats().requests_received == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }

  // The reply lands even though the drain started mid-solve: drain stops
  // reads, not writes.
  std::future<service::DiagnosisReply> reply =
      std::async(std::launch::async, [&] {
        return std::move(client.receive().reply);
      });
  server->drain(10s);
  EXPECT_EQ(reply.get().results.size(), 1u);

  const auto stats = server->stats();
  EXPECT_EQ(stats.requests_received, 1u);
  EXPECT_EQ(stats.replies_sent, 1u);
  server.reset();

  // The drained server closed the connection cleanly behind the reply.
  EXPECT_THROW((void)client.receive(), net::NetError);
}

TEST_F(ServiceResilienceTest, ChaosStormPreservesTheCounterIdentity) {
  if (!net::sockets_supported()) GTEST_SKIP() << "no socket support";
  // Everything at once: slow receives, random connection drops, slow and
  // failing solves.  Whatever happens, no hang, no crash, and every
  // received request is answered exactly once.
  ChaosGuard guard(
      "net.recv_delay:1ms,net.drop_conn:0.05,engine.solve_delay:2ms,"
      "engine.solve_fail:0.2",
      /*seed=*/7);
  service::ServiceOptions options;
  options.workers = 1;
  options.max_batch = 4;
  options.shed_high_water = 8;
  service::DiagnosisService service(options);
  service.add_session("paper", *session_);
  net::Server server(service, {});

  std::size_t answered = 0;
  std::size_t transport_failures = 0;
  for (int connection = 0; connection < 4; ++connection) {
    try {
      net::ClientOptions client_options;
      client_options.request_timeout = 10000ms;
      net::Client client("127.0.0.1", server.port(), client_options);
      for (int i = 0; i < 8; ++i) {
        try {
          (void)client.diagnose(request_with(0, 0));
          ++answered;
        } catch (const net::RemoteError&) {
          ++answered;  // shed or injected solve failure: still an answer
        }
      }
      client.close();
    } catch (const net::NetError&) {
      ++transport_failures;  // injected drop killed the connection
    }
  }
  EXPECT_GT(answered + transport_failures, 0u);

  server.stop();
  const auto stats = server.stats();
  // Drops may lose requests before they are *received*, but every
  // received request produced exactly one answer frame (some of which
  // the dropped peer never read — sending them still counts).
  EXPECT_LE(stats.replies_sent + stats.error_frames_sent,
            stats.requests_received);
  const auto unanswered = stats.requests_received -
                          (stats.replies_sent + stats.error_frames_sent);
  // The only unanswered requests are those whose connection dropped
  // before the writer could flush — bounded by the dropped connections.
  EXPECT_LE(unanswered, stats.disconnects);
}

}  // namespace
}  // namespace ftdiag
