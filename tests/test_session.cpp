/// Facade tests: builder validation, process-wide dictionary sharing,
/// the generate -> score -> diagnose round trip, and batch diagnosis.
#include "session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "circuits/registry.hpp"
#include "core/ambiguity.hpp"
#include "core/atpg.hpp"
#include "util/error.hpp"

namespace ftdiag {
namespace {

// ------------------------------------------------------------- builder

TEST(SessionBuilder, RequiresACut) {
  EXPECT_THROW(SessionBuilder().build(), ConfigError);
}

TEST(SessionBuilder, UnknownRegistryNameRejected) {
  EXPECT_THROW(SessionBuilder::from_registry("no_such_circuit"),
               ConfigError);
  EXPECT_THROW(Session::open("builtin:no_such_circuit"), ConfigError);
}

TEST(SessionBuilder, RejectsInvalidSearchOptions) {
  SearchOptions search;
  search.n_frequencies = 0;
  EXPECT_THROW(SessionBuilder::from_registry("tow_thomas")
                   .search(search)
                   .build(),
               ConfigError);

  SearchOptions bad_ga;
  bad_ga.ga.population_size = 0;
  EXPECT_THROW(SessionBuilder::from_registry("tow_thomas")
                   .search(bad_ga)
                   .build(),
               ConfigError);
}

TEST(SessionBuilder, RejectsNegativeNoiseSigma) {
  EXPECT_THROW(SessionBuilder::from_registry("tow_thomas")
                   .noise({-0.1, 1})
                   .build(),
               ConfigError);
}

TEST(SessionBuilder, RejectsBadDeviationSpec) {
  faults::DeviationSpec spec;
  spec.step_fraction = 0.0;
  EXPECT_THROW(SessionBuilder::from_registry("tow_thomas")
                   .deviations(spec)
                   .build(),
               ConfigError);
}

TEST(SessionBuilder, FluentShorthandsStick) {
  Session session = SessionBuilder::from_registry("tow_thomas")
                        .fitness(FitnessKind::kHybrid)
                        .frequencies(3)
                        .seed(7)
                        .noise({0.002, 11})
                        .build();
  EXPECT_EQ(session.options().search.fitness, FitnessKind::kHybrid);
  EXPECT_EQ(session.options().search.n_frequencies, 3u);
  EXPECT_EQ(session.options().search.seed, 7u);
  EXPECT_DOUBLE_EQ(session.options().noise.sigma, 0.002);
  EXPECT_EQ(session.cut().name, "tow_thomas");
}

// -------------------------------------------------- dictionary sharing

TEST(SessionDictionary, SharedAcrossSessionsOfTheSameCut) {
  Session::clear_dictionary_cache();
  Session a = Session::open("builtin:tow_thomas");
  Session b = SessionBuilder::from_registry("tow_thomas")
                  .fitness(FitnessKind::kHybrid)  // fitness doesn't re-simulate
                  .build();

  const auto dict_a = a.dictionary();
  const auto dict_b = b.dictionary();
  // Pointer identity: the second session found the first one's build in
  // the process-wide cache instead of re-running fault simulation.
  EXPECT_EQ(dict_a.get(), dict_b.get());
  EXPECT_EQ(Session::dictionary_cache_size(), 1u);
}

TEST(SessionDictionary, LegacyAtpgFlowSharesTheSameCache) {
  Session::clear_dictionary_cache();
  Session session = Session::open("builtin:tow_thomas");
  const auto dict = session.dictionary();

  const core::AtpgFlow flow(circuits::make_by_name("tow_thomas"));
  EXPECT_EQ(&flow.dictionary(), dict.get());
  EXPECT_EQ(Session::dictionary_cache_size(), 1u);
}

TEST(SessionDictionary, DifferentDeviationsGetDistinctDictionaries) {
  Session::clear_dictionary_cache();
  Session paper = Session::open("builtin:tow_thomas");
  faults::DeviationSpec coarse;
  coarse.step_fraction = 0.20;
  Session stepped = SessionBuilder::from_registry("tow_thomas")
                        .deviations(coarse)
                        .build();
  EXPECT_NE(paper.dictionary().get(), stepped.dictionary().get());
  EXPECT_EQ(Session::dictionary_cache_size(), 2u);
  EXPECT_LT(stepped.dictionary()->fault_count(),
            paper.dictionary()->fault_count());
}

TEST(SessionDictionary, ConcurrentFirstAccessYieldsOnePointer) {
  Session::clear_dictionary_cache();
  Session session = Session::open("builtin:tow_thomas");
  std::vector<std::shared_ptr<const faults::FaultDictionary>> seen(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < seen.size(); ++i) {
    threads.emplace_back([&, i] { seen[i] = session.dictionary(); });
  }
  for (auto& t : threads) t.join();
  for (const auto& d : seen) EXPECT_EQ(d.get(), seen[0].get());
}

// --------------------------------------------------------- round trip

class SessionRoundTrip : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    session_ = new Session(SessionBuilder::from_registry("tow_thomas")
                               .fitness(FitnessKind::kHybrid)
                               .build());
    result_ = new TestGenResult(session_->generate_tests());
  }
  static void TearDownTestSuite() {
    delete result_;
    delete session_;
    result_ = nullptr;
    session_ = nullptr;
  }
  static Session* session_;
  static TestGenResult* result_;
};

Session* SessionRoundTrip::session_ = nullptr;
TestGenResult* SessionRoundTrip::result_ = nullptr;

TEST_F(SessionRoundTrip, GenerateInstallsTheWinningVector) {
  ASSERT_TRUE(session_->has_vector());
  EXPECT_EQ(session_->vector().frequencies_hz,
            result_->best.vector.frequencies_hz);
  EXPECT_EQ(result_->dictionary_faults,
            session_->dictionary()->fault_count());
  EXPECT_GT(result_->best.fitness, 0.0);
}

TEST_F(SessionRoundTrip, ScoreAgreesWithGenerateResult) {
  const auto rescored = session_->score(result_->best.vector);
  EXPECT_DOUBLE_EQ(rescored.fitness, result_->best.fitness);
  EXPECT_EQ(rescored.intersections, result_->best.intersections);
}

TEST_F(SessionRoundTrip, DiagnoseNamesTheFaultyGroup) {
  // An off-grid fault on every testable site must diagnose into the true
  // site's structural ambiguity group (tow_thomas has ratio-degenerate
  // pairs, so exact-site equality is not the right contract).  The GA's
  // winning vector may also retain trajectory *crossings* (its fitness
  // counts them but cannot always drive them to zero); when the injected
  // deviation lands on a crossing, the true site ties the best candidate
  // to within a small distance factor, so a diagnosis whose near-tie
  // ambiguity set contains the true site is also correct.
  const auto groups = core::find_ambiguity_groups(*session_->dictionary());
  for (const auto& site : session_->cut().testable) {
    SCOPED_TRACE(site);
    const faults::ParametricFault fault{faults::FaultSite::value_of(site),
                                        0.23};
    const auto diagnosis = session_->diagnose(session_->measure(fault));
    const auto near_ties = diagnosis.ambiguity_set(4.0);
    const bool tied =
        std::find(near_ties.begin(), near_ties.end(), site) != near_ties.end();
    EXPECT_TRUE(core::same_group(groups, diagnosis.best().site, site) || tied)
        << "diagnosed " << diagnosis.best().site << " at distance "
        << diagnosis.best().distance << "; true site " << site
        << " outside the x4 ambiguity set";
  }
}

TEST_F(SessionRoundTrip, DiagnoseWithoutVectorThrows) {
  Session fresh = Session::open("builtin:tow_thomas");
  EXPECT_THROW(fresh.vector(), ConfigError);
  EXPECT_THROW(fresh.diagnose(core::Point{0.0, 0.0}), ConfigError);
  EXPECT_THROW(fresh.measure({faults::FaultSite::value_of("R1"), 0.2}),
               ConfigError);
}

TEST_F(SessionRoundTrip, BatchDiagnosisAgreesWithSingleCalls) {
  std::vector<core::Point> points;
  std::vector<faults::ParametricFault> injected;
  std::size_t i = 0;
  for (const auto& site : session_->cut().testable) {
    const double deviation = (i % 2 ? -1.0 : 1.0) * (0.15 + 0.03 * double(i));
    injected.push_back({faults::FaultSite::value_of(site), deviation});
    points.push_back(session_->observe(session_->measure(injected.back())));
    ++i;
  }

  const auto batch = session_->diagnose_batch(points);
  ASSERT_EQ(batch.size(), points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    const auto single = session_->diagnose(points[k]);
    EXPECT_EQ(batch[k].best().site, single.best().site);
    EXPECT_DOUBLE_EQ(batch[k].best().distance, single.best().distance);
    EXPECT_EQ(batch[k].ranking.size(), single.ranking.size());
  }
}

TEST_F(SessionRoundTrip, BatchDiagnosisIsThreadSafe) {
  std::vector<core::Point> points;
  for (const auto& site : session_->cut().testable) {
    points.push_back(session_->observe(
        session_->measure({faults::FaultSite::value_of(site), 0.3})));
  }
  const auto reference = session_->diagnose_batch(points);

  std::vector<std::vector<core::Diagnosis>> results(4);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back(
        [&, t] { results[t] = session_->diagnose_batch(points); });
  }
  for (auto& t : threads) t.join();
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), reference.size());
    for (std::size_t k = 0; k < r.size(); ++k) {
      EXPECT_EQ(r[k].best().site, reference[k].best().site);
    }
  }
}

TEST_F(SessionRoundTrip, ConcurrentDiagnosisAndEngineDictionaryBuilds) {
  // Batch diagnosis on the shared session must stay correct while other
  // threads run full dictionary builds through the parallel simulation
  // engine (distinct deviation steps force distinct cache keys, so each
  // builder thread performs a real engine build, itself multi-threaded).
  std::vector<core::Point> points;
  for (const auto& site : session_->cut().testable) {
    points.push_back(session_->observe(
        session_->measure({faults::FaultSite::value_of(site), 0.25})));
  }
  const auto reference = session_->diagnose_batch(points);

  constexpr std::size_t kDiagnosers = 3;
  constexpr std::size_t kBuilders = 3;
  std::vector<std::vector<core::Diagnosis>> results(kDiagnosers);
  std::vector<std::size_t> fault_counts(kBuilders, 0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kDiagnosers; ++t) {
    threads.emplace_back([&, t] {
      for (int repeat = 0; repeat < 5; ++repeat) {
        results[t] = session_->diagnose_batch(points);
      }
    });
  }
  for (std::size_t t = 0; t < kBuilders; ++t) {
    threads.emplace_back([&, t] {
      faults::DeviationSpec spec;
      spec.step_fraction = 0.05 + 0.01 * static_cast<double>(t + 1);
      SimOptions sim;
      sim.threads = 2;
      Session builder = SessionBuilder::from_registry("tow_thomas")
                            .deviations(spec)
                            .sim(sim)
                            .build();
      fault_counts[t] = builder.dictionary()->fault_count();
    });
  }
  for (auto& thread : threads) thread.join();

  for (const auto& r : results) {
    ASSERT_EQ(r.size(), reference.size());
    for (std::size_t k = 0; k < r.size(); ++k) {
      EXPECT_EQ(r[k].best().site, reference[k].best().site);
      EXPECT_DOUBLE_EQ(r[k].best().distance, reference[k].best().distance);
    }
  }
  for (const std::size_t count : fault_counts) EXPECT_GT(count, 0u);
}

TEST(SessionSimOptions, ThreadsShorthandSticksAndNeverChangesTheDictionary) {
  SimOptions sim;
  sim.threads = 8;
  Session configured = SessionBuilder::from_registry("tow_thomas")
                           .sim(sim)
                           .build();
  EXPECT_EQ(configured.options().sim.threads, 8u);
  Session shorthand =
      SessionBuilder::from_registry("tow_thomas").threads(8).build();
  EXPECT_EQ(shorthand.options().sim.threads, 8u);

  // Thread count is excluded from the cache key: same dictionary pointer.
  Session single = SessionBuilder::from_registry("tow_thomas").threads(1).build();
  EXPECT_EQ(shorthand.dictionary().get(), single.dictionary().get());
}

TEST(SessionSimOptions, ReuseToggleGetsADistinctDictionary) {
  Session::clear_dictionary_cache();
  Session reuse = SessionBuilder::from_registry("tow_thomas").build();
  SimOptions serial;
  serial.reuse_factorization = false;
  Session naive = SessionBuilder::from_registry("tow_thomas")
                      .sim(serial)
                      .build();
  // Reuse changes values within rounding error, so the two variants must
  // not share cache entries.
  EXPECT_NE(reuse.dictionary().get(), naive.dictionary().get());
  EXPECT_EQ(reuse.dictionary()->fault_count(),
            naive.dictionary()->fault_count());
}

TEST(SessionSimOptions, RejectsBadEngineOptions) {
  SimOptions sim;
  sim.max_growth = 0.5;
  EXPECT_THROW(
      SessionBuilder::from_registry("tow_thomas").sim(sim).build(),
      ConfigError);
}

TEST_F(SessionRoundTrip, UseVectorReArmsDiagnosis) {
  Session session = SessionBuilder::from_registry("tow_thomas").build();
  session.use_vector({{700.0, 1600.0}});
  EXPECT_EQ(session.vector().frequencies_hz.size(), 2u);
  const faults::ParametricFault fault{faults::FaultSite::value_of("R1"), 0.3};
  EXPECT_NO_THROW(session.diagnose(session.measure(fault)));
}

TEST(SessionSensitivitySeeding, WorksForAnyFrequencyCount) {
  // The seeding screen used to be silently skipped unless n_frequencies
  // was exactly 2; it now generalizes to n-tuples (and peaks for n = 1).
  for (std::size_t n : {1u, 2u, 3u}) {
    SearchOptions search;
    search.n_frequencies = n;
    search.seed_with_sensitivity = true;
    search.sensitivity_seed_count = 3;
    search.ga.population_size = 8;
    search.ga.generations = 1;
    Session session = SessionBuilder::from_registry("sallen_key_lp")
                          .search(search)
                          .build();
    const TestGenResult result = session.run_search();
    EXPECT_EQ(result.best.vector.frequencies_hz.size(), n) << n;
    EXPECT_GT(result.best.fitness, 0.0) << n;
  }
}

}  // namespace
}  // namespace ftdiag
