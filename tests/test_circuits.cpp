/// Verifies every registry circuit against its analytic design values.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuits/ladders.hpp"
#include "circuits/mfb.hpp"
#include "circuits/nf_biquad.hpp"
#include "circuits/registry.hpp"
#include "circuits/sallen_key.hpp"
#include "circuits/state_variable.hpp"
#include "circuits/tow_thomas.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/transfer_function.hpp"
#include "util/error.hpp"

namespace ftdiag::circuits {
namespace {

TEST(Registry, PaperCutIsFirst) {
  ASSERT_FALSE(registry().empty());
  EXPECT_EQ(registry().front().name, "nf_biquad");
}

TEST(Registry, NamesAreUniqueAndResolvable) {
  const auto names = registry_names();
  for (const auto& name : names) {
    const auto cut = make_by_name(name);
    EXPECT_EQ(cut.name, name);
  }
  EXPECT_THROW(make_by_name("not_a_circuit"), ConfigError);
}

/// Every registry circuit must pass its own descriptor check and produce a
/// well-behaved AC response over its dictionary grid.
class RegistryCircuitTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryCircuitTest, DescriptorIsConsistent) {
  const auto cut = make_by_name(GetParam());
  EXPECT_NO_THROW(cut.check());
  EXPECT_FALSE(cut.testable.empty());
}

TEST_P(RegistryCircuitTest, SweepIsFiniteAndNonTrivial) {
  const auto cut = make_by_name(GetParam());
  mna::AcAnalysis ac(cut.circuit);
  const auto response = ac.sweep(cut.dictionary_grid, cut.output_node);
  double max_mag = 0.0;
  for (std::size_t i = 0; i < response.size(); ++i) {
    EXPECT_TRUE(std::isfinite(response.magnitude(i)));
    max_mag = std::max(max_mag, response.magnitude(i));
  }
  EXPECT_GT(max_mag, 0.01);  // the output actually responds
}

TEST_P(RegistryCircuitTest, EveryTestableFaultMovesTheResponse) {
  const auto cut = make_by_name(GetParam());
  mna::AcAnalysis nominal(cut.circuit);
  const auto golden = nominal.sweep(cut.dictionary_grid, cut.output_node);
  for (const auto& name : cut.testable) {
    netlist::Circuit faulty = cut.circuit;
    faulty.scale_value(name, 1.30);
    mna::AcAnalysis ac(faulty);
    const auto response = ac.sweep(cut.dictionary_grid, cut.output_node);
    EXPECT_GT(response.max_deviation(golden), 1e-6)
        << "+30% on " << name << " left the response unchanged";
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, RegistryCircuitTest,
                         ::testing::ValuesIn(registry_names()));

TEST(NfBiquad, MatchesAnalyticTransferEverywhere) {
  const auto cut = make_paper_cut();
  mna::AcAnalysis ac(cut.circuit);
  for (double f : {10.0, 100.0, 500.0, 1000.0, 2000.0, 10000.0, 100000.0}) {
    const auto h_mna = ac.node_voltage(f, cut.output_node);
    const auto h_ref = nf_biquad_transfer({}, f);
    EXPECT_NEAR(std::abs(h_mna - h_ref), 0.0, 1e-9 + 1e-9 * std::abs(h_ref))
        << "mismatch at " << f << " Hz";
  }
}

TEST(NfBiquad, DesignEquationsRealized) {
  const auto cut = make_paper_cut();
  mna::AcAnalysis ac(cut.circuit);
  const auto summary = mna::measure_lowpass(
      ac.sweep(cut.dictionary_grid, cut.output_node));
  EXPECT_NEAR(summary.dc_gain, 1.0, 1e-3);          // unity overall gain
  EXPECT_NEAR(summary.f_3db_hz, 1000.0, 10.0);      // Butterworth: f_3db = f0
}

TEST(NfBiquad, HasSevenTestablePassives) {
  const auto cut = make_paper_cut();
  EXPECT_EQ(cut.testable.size(), 7u);
}

TEST(NfBiquad, RejectsInfeasibleGain) {
  NfBiquadDesign design;
  design.dc_gain = 2.5;  // needs R1 <= 0 with the alpha = 1/2 divider
  EXPECT_THROW(make_nf_biquad(design), ConfigError);
}

TEST(TowThomas, MatchesAnalyticTransferEverywhere) {
  const auto cut = make_tow_thomas();
  mna::AcAnalysis ac(cut.circuit);
  for (double f : {10.0, 100.0, 1000.0, 3000.0, 30000.0}) {
    const auto h_mna = ac.node_voltage(f, cut.output_node);
    const auto h_ref = tow_thomas_transfer({}, f);
    EXPECT_NEAR(std::abs(h_mna - h_ref), 0.0, 1e-9 + 1e-9 * std::abs(h_ref));
  }
}

TEST(TowThomas, ButterworthResponseAtF0) {
  const auto cut = make_tow_thomas();
  mna::AcAnalysis ac(cut.circuit);
  EXPECT_NEAR(std::abs(ac.node_voltage(1000.0, "lp")), 1.0 / std::sqrt(2.0),
              1e-6);
}

TEST(SallenKey, QControlsPeaking) {
  SallenKeyDesign peaky;
  peaky.q = 3.0;
  const auto cut = make_sallen_key_lowpass(peaky);
  mna::AcAnalysis ac(cut.circuit);
  const auto response = ac.sweep(cut.dictionary_grid, cut.output_node);
  const auto bp = mna::measure_bandpass(response);
  // A Q=3 low-pass peaks by ~Q near f0.
  EXPECT_NEAR(bp.peak_gain, 3.0, 0.2);
  EXPECT_NEAR(bp.f_peak_hz, 1000.0, 50.0);
}

TEST(SallenKey, HighpassCutoffAtDesign) {
  SallenKeyDesign design;
  design.f0_hz = 5e3;
  const auto cut = make_sallen_key_highpass(design);
  mna::AcAnalysis ac(cut.circuit);
  EXPECT_NEAR(std::abs(ac.node_voltage(5e3, "out")), 1.0 / std::sqrt(2.0),
              1e-3);
}

TEST(Mfb, LowpassGainAndCutoff) {
  MfbDesign design;
  design.gain = 1.5;
  const auto cut = make_mfb_lowpass(design);
  mna::AcAnalysis ac(cut.circuit);
  EXPECT_NEAR(std::abs(ac.node_voltage(10.0, "out")), 1.5, 0.01);
  EXPECT_NEAR(std::abs(ac.node_voltage(1000.0, "out")),
              1.5 / std::sqrt(2.0), 0.02);
}

TEST(Mfb, BandpassRequiresRealizableR3) {
  MfbDesign design;
  design.q = 0.5;
  design.gain = 1.0;  // 2 Q^2 = 0.5 <= gain
  EXPECT_THROW(make_mfb_bandpass(design), ConfigError);
}

TEST(StateVariable, LowpassUnityAndF0) {
  const auto cut = make_state_variable();
  mna::AcAnalysis ac(cut.circuit);
  EXPECT_NEAR(std::abs(ac.node_voltage(10.0, "lp")), 1.0, 1e-3);
  // Q = 1 design: |H(f0)| = Q = 1.
  EXPECT_NEAR(std::abs(ac.node_voltage(1000.0, "lp")), 1.0, 0.01);
}

TEST(StateVariable, QBelowThirdRejected) {
  StateVariableDesign design;
  design.q = 0.2;
  EXPECT_THROW(make_state_variable(design), ConfigError);
}

TEST(RcLadder, AttenuationGrowsWithSections) {
  RcLadderDesign small;
  small.sections = 2;
  RcLadderDesign large;
  large.sections = 6;
  const double f = 10e3;
  mna::AcAnalysis ac_small(make_rc_ladder(small).circuit);
  mna::AcAnalysis ac_large(make_rc_ladder(large).circuit);
  EXPECT_GT(std::abs(ac_small.node_voltage(f, "n2")),
            std::abs(ac_large.node_voltage(f, "n6")));
}

TEST(RcLadder, ZeroSectionsRejected) {
  RcLadderDesign bad;
  bad.sections = 0;
  EXPECT_THROW(make_rc_ladder(bad), ConfigError);
}

TEST(LcLadder, ButterworthPassbandAndCorner) {
  const auto cut = make_lc_ladder({});
  mna::AcAnalysis ac(cut.circuit);
  // Doubly-terminated: |H| = 1/2 in the passband, 1/(2 sqrt 2) at cutoff.
  EXPECT_NEAR(std::abs(ac.node_voltage(100.0, cut.output_node)), 0.5, 1e-3);
  EXPECT_NEAR(std::abs(ac.node_voltage(10e3, cut.output_node)),
              0.5 / std::sqrt(2.0), 0.005);
}

TEST(LcLadder, FifthOrderRollOff) {
  const auto cut = make_lc_ladder({});
  mna::AcAnalysis ac(cut.circuit);
  // One decade above cutoff a 5th-order filter drops ~100 dB from 1/2.
  const double mag = std::abs(ac.node_voltage(100e3, cut.output_node));
  EXPECT_LT(mag, 0.5 * 2e-5);
}

TEST(LcLadder, EvenOrderRejected) {
  LcLadderDesign bad;
  bad.order = 4;
  EXPECT_THROW(make_lc_ladder(bad), ConfigError);
}

TEST(TwinT, NotchAtDesignFrequency) {
  const auto cut = make_twin_t({});
  mna::AcAnalysis ac(cut.circuit);
  const double notch = std::abs(ac.node_voltage(1000.0, "out"));
  const double passband = std::abs(ac.node_voltage(10.0, "out"));
  EXPECT_LT(notch, passband / 100.0);
}

}  // namespace
}  // namespace ftdiag::circuits
