/// End-to-end reproduction of the paper's flow, asserted quantitatively:
/// fault simulation -> dictionary -> GA (paper parameters) -> trajectory
/// separation -> diagnosis of unknown faults.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/nf_biquad.hpp"
#include "circuits/registry.hpp"
#include "core/ambiguity.hpp"
#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "faults/fault_injector.hpp"
#include "mna/ac_analysis.hpp"

namespace ftdiag {
namespace {

class PaperFlowTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    flow_ = new core::AtpgFlow(circuits::make_paper_cut());
    result_ = new core::AtpgResult(flow_->run());
  }
  static void TearDownTestSuite() {
    delete result_;
    delete flow_;
    result_ = nullptr;
    flow_ = nullptr;
  }
  static core::AtpgFlow* flow_;
  static core::AtpgResult* result_;
};

core::AtpgFlow* PaperFlowTest::flow_ = nullptr;
core::AtpgResult* PaperFlowTest::result_ = nullptr;

TEST_F(PaperFlowTest, DictionaryMatchesPaperSpec) {
  // 7 passives x 8 deviations (60%..140% in 10% steps, nominal excluded).
  EXPECT_EQ(flow_->dictionary().fault_count(), 56u);
  EXPECT_EQ(flow_->dictionary().site_labels().size(), 7u);
}

TEST_F(PaperFlowTest, GaAchievesZeroIntersections) {
  EXPECT_EQ(result_->best.intersections, 0u);
  EXPECT_DOUBLE_EQ(result_->best.fitness, 1.0);
}

TEST_F(PaperFlowTest, TestVectorHasTwoFrequenciesInBand) {
  ASSERT_EQ(result_->best.vector.frequencies_hz.size(), 2u);
  for (double f : result_->best.vector.frequencies_hz) {
    EXPECT_GE(f, flow_->cut().band_low_hz);
    EXPECT_LE(f, flow_->cut().band_high_hz);
  }
}

TEST_F(PaperFlowTest, CleanDiagnosisAccuracyAboveNinetyPercent) {
  core::EvaluationOptions options;
  options.trials = 300;
  const auto report = core::evaluate_diagnosis(
      flow_->cut(), flow_->dictionary(), result_->best.vector,
      core::SamplingPolicy{}, options);
  EXPECT_GT(report.site_accuracy, 0.90);
  EXPECT_GT(report.top2_accuracy, 0.97);
  EXPECT_LT(report.mean_deviation_error, 0.03);
}

TEST_F(PaperFlowTest, OptimizedVectorBeatsNaiveVector) {
  // A naive vector (two near-identical low frequencies) must not out-score
  // the GA's choice, and should diagnose worse.
  const auto naive_score = flow_->score({{15.0, 18.0}});
  EXPECT_LE(naive_score.fitness, result_->best.fitness);

  core::EvaluationOptions options;
  options.trials = 200;
  options.noise_sigma = 0.005;
  const auto naive_report = core::evaluate_diagnosis(
      flow_->cut(), flow_->dictionary(), {{15.0, 18.0}},
      core::SamplingPolicy{}, options);
  const auto best_report = core::evaluate_diagnosis(
      flow_->cut(), flow_->dictionary(), result_->best.vector,
      core::SamplingPolicy{}, options);
  EXPECT_GT(best_report.site_accuracy, naive_report.site_accuracy);
}

TEST_F(PaperFlowTest, UnknownOffGridFaultDiagnosedLikeFig3) {
  // The paper's Fig. 3 demo: an unknown fault (off the 10% grid) lands
  // nearest to its own component's trajectory.
  const auto engine = flow_->evaluator().make_engine(result_->best.vector);
  const faults::ParametricFault unknown{faults::FaultSite::value_of("R3"),
                                        0.23};
  const auto faulty = faults::inject(flow_->cut().circuit, unknown);
  mna::AcAnalysis analysis(faulty);
  const auto measured =
      analysis.sweep(result_->best.vector.frequencies_hz,
                     flow_->cut().output_node);
  const auto observed = flow_->evaluator().sampler().sample(
      measured, result_->best.vector.frequencies_hz);
  const auto diagnosis = engine.diagnose(observed);
  EXPECT_EQ(diagnosis.best().site, "R3");
  EXPECT_NEAR(diagnosis.best().estimated_deviation, 0.23, 0.05);
}

TEST_F(PaperFlowTest, TrajectoriesSmoothAndThroughOrigin) {
  const auto trajectories =
      flow_->evaluator().trajectories(result_->best.vector);
  for (const auto& t : trajectories) {
    EXPECT_EQ(t.point_count(), 9u);
    bool has_origin = false;
    for (const auto& p : t.points()) {
      has_origin |= p.deviation == 0.0 && core::norm(p.coords) < 1e-12;
    }
    EXPECT_TRUE(has_origin) << t.site();
  }
}

TEST(RegistryFlow, EveryCircuitSupportsTheFullPipeline) {
  // The method must run end-to-end on every registry circuit (a smaller GA
  // keeps this test quick).  Fitness saturation differs per topology.
  core::AtpgConfig config;
  config.ga.population_size = 24;
  config.ga.generations = 4;
  for (const auto& name : circuits::registry_names()) {
    SCOPED_TRACE(name);
    core::AtpgFlow flow(circuits::make_by_name(name), config);
    const auto result = flow.run();
    EXPECT_GT(result.best.fitness, 0.0);
    EXPECT_EQ(result.best.vector.frequencies_hz.size(), 2u);
    const auto groups = core::find_ambiguity_groups(flow.dictionary());
    EXPECT_GE(groups.size(), 1u);
    EXPECT_LE(groups.size(), flow.dictionary().site_labels().size());
  }
}

}  // namespace
}  // namespace ftdiag
