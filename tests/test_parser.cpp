#include "netlist/parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ftdiag::netlist {
namespace {

TEST(Parser, RcLowPass) {
  const Circuit c = parse_netlist(
      "rc low-pass\n"
      "V1 in 0 AC 1\n"
      "R1 in out 1k\n"
      "C1 out 0 100n\n"
      ".end\n");
  EXPECT_EQ(c.title(), "rc low-pass");
  EXPECT_EQ(c.component_count(), 3u);
  EXPECT_DOUBLE_EQ(c.value_of("R1"), 1000.0);
  EXPECT_DOUBLE_EQ(c.value_of("C1"), 100e-9);
  EXPECT_DOUBLE_EQ(c.component("V1").ac_magnitude, 1.0);
}

TEST(Parser, CommentsSkipped) {
  const Circuit c = parse_netlist(
      "* a comment\n"
      "; another\n"
      "// and another\n"
      "R1 a 0 1k   ; trailing comment\n");
  EXPECT_EQ(c.component_count(), 1u);
}

TEST(Parser, SourceWithDcAndAcPhase) {
  const Circuit c = parse_netlist("V1 in 0 DC 2.5 AC 1 45\n");
  const Component& v = c.component("V1");
  EXPECT_DOUBLE_EQ(v.dc, 2.5);
  EXPECT_DOUBLE_EQ(v.ac_magnitude, 1.0);
  EXPECT_DOUBLE_EQ(v.ac_phase_deg, 45.0);
}

TEST(Parser, BareSourceValueIsDc) {
  const Circuit c = parse_netlist("I1 a 0 3m\n");
  EXPECT_DOUBLE_EQ(c.component("I1").dc, 3e-3);
}

TEST(Parser, ControlledSources) {
  const Circuit c = parse_netlist(
      "V1 in 0 AC 1\n"
      "E1 x 0 in 0 10\n"
      "G1 y 0 in 0 1m\n"
      "F1 z 0 V1 2\n"
      "H1 w 0 V1 50\n"
      "Rx x 0 1\nRy y 0 1\nRz z 0 1\nRw w 0 1\n");
  EXPECT_EQ(c.component("E1").kind, ComponentKind::kVcvs);
  EXPECT_DOUBLE_EQ(c.component("E1").value, 10.0);
  EXPECT_EQ(c.component("G1").kind, ComponentKind::kVccs);
  EXPECT_EQ(c.component("F1").kind, ComponentKind::kCccs);
  EXPECT_EQ(c.component("F1").control, "V1");
  EXPECT_EQ(c.component("H1").kind, ComponentKind::kCcvs);
  EXPECT_DOUBLE_EQ(c.component("H1").value, 50.0);
}

TEST(Parser, IdealOpAmp) {
  const Circuit c = parse_netlist(
      "V1 in 0 AC 1\n"
      "R1 in n 1k\n"
      "R2 n out 10k\n"
      "X1 0 n out IDEAL\n");
  EXPECT_EQ(c.component("X1").kind, ComponentKind::kIdealOpAmp);
}

TEST(Parser, MacroOpAmpWithParams) {
  const Circuit c = parse_netlist("X1 p n out OPAMP AD0=1e5 GBW=2meg RIN=1meg ROUT=50\n");
  const Component& x = c.component("X1");
  EXPECT_EQ(x.kind, ComponentKind::kOpAmp);
  EXPECT_DOUBLE_EQ(x.opamp.dc_gain, 1e5);
  EXPECT_DOUBLE_EQ(x.opamp.gbw_hz, 2e6);
  EXPECT_DOUBLE_EQ(x.opamp.rin, 1e6);
  EXPECT_DOUBLE_EQ(x.opamp.rout, 50.0);
}

TEST(Parser, MacroOpAmpDefaultsWhenNoParams) {
  const Circuit c = parse_netlist("X1 p n out OPAMP\n");
  EXPECT_EQ(c.component("X1").opamp, OpAmpModel{});
}

TEST(Parser, TitleDirective) {
  const Circuit c = parse_netlist(
      "R1 a 0 1k\n"
      ".title late title\n");
  EXPECT_EQ(c.title(), "late title");
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_netlist("R1 a 0 1k\nR2 b 0 oops\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, BadCardsRejected) {
  EXPECT_THROW(parse_netlist("R1 a 0\n"), ParseError);          // missing value
  EXPECT_THROW(parse_netlist("E1 a 0 c 10\n"), ParseError);     // short VCVS
  // A lone unknown card as the FIRST line is consumed as a SPICE title;
  // after a title it must be rejected as an unknown card type.
  EXPECT_NO_THROW(parse_netlist("Q1 a b c model\n"));
  EXPECT_THROW(parse_netlist("title\nQ1 a b c model\n"), ParseError);
  EXPECT_THROW(parse_netlist("X1 a b c WEIRD\n"), ParseError);  // unknown model
  EXPECT_THROW(parse_netlist(".include foo\n"), ParseError);    // unsupported
  EXPECT_THROW(parse_netlist("X1 0 n out IDEAL AD0=1\n"), ParseError);
}

TEST(Parser, ContentAfterEndRejected) {
  EXPECT_THROW(parse_netlist("R1 a 0 1\n.end\nR2 b 0 1\n"), ParseError);
}

TEST(Parser, DuplicateNameRejectedWithLine) {
  EXPECT_THROW(parse_netlist("R1 a 0 1\nR1 b 0 2\n"), ParseError);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(parse_netlist_file("/no/such/netlist.cir"), ParseError);
}

TEST(Writer, RoundTripsThroughParser) {
  const Circuit original = parse_netlist(
      "roundtrip test\n"
      "V1 in 0 DC 1 AC 2 30\n"
      "R1 in mid 4.7k\n"
      "L1 mid out 10m\n"
      "C1 out 0 33n\n"
      "E1 x 0 out 0 2\n"
      "Rx x 0 1k\n"
      "X1 0 x amp OPAMP AD0=50000 GBW=3e6 RIN=2e6 ROUT=75\n"
      "Ramp amp 0 10k\n");
  const std::string text = write_netlist(original);
  const Circuit reparsed = parse_netlist(text);

  EXPECT_EQ(reparsed.title(), original.title());
  EXPECT_EQ(reparsed.component_count(), original.component_count());
  EXPECT_DOUBLE_EQ(reparsed.value_of("R1"), 4700.0);
  EXPECT_DOUBLE_EQ(reparsed.value_of("L1"), 10e-3);
  EXPECT_DOUBLE_EQ(reparsed.component("V1").ac_phase_deg, 30.0);
  EXPECT_DOUBLE_EQ(reparsed.component("X1").opamp.gbw_hz, 3e6);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(Writer, IdealOpAmpEmittedWithXPrefix) {
  Circuit c;
  c.add_vsource("V1", "in", "0", 0.0, 1.0);
  c.add_resistor("R1", "in", "n", 1e3);
  c.add_resistor("R2", "n", "out", 1e3);
  c.add_ideal_opamp("OA", "0", "n", "out");
  const std::string text = write_netlist(c);
  EXPECT_NE(text.find("IDEAL"), std::string::npos);
  // Names without the SPICE X prefix gain one so the text re-parses.
  const Circuit back = parse_netlist(text);
  EXPECT_EQ(back.component("XOA").kind, ComponentKind::kIdealOpAmp);
}

}  // namespace
}  // namespace ftdiag::netlist
