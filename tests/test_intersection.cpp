#include "core/intersection.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ftdiag::core {
namespace {

FaultTrajectory straight_line(const std::string& site, Point direction,
                              std::size_t dim = 2) {
  (void)dim;
  std::vector<TrajectoryPoint> pts;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    Point p(direction.size());
    for (std::size_t i = 0; i < direction.size(); ++i) p[i] = d * direction[i];
    pts.push_back({d, std::move(p)});
  }
  return FaultTrajectory(site, std::move(pts));
}

TEST(Intersections, TwoSeparatedLinesThroughOriginDoNotCount) {
  // Both trajectories pass through the shared origin; that structural
  // contact must not count as an intersection.
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.0}), straight_line("B", {0.0, 1.0})};
  const auto report = count_intersections(trajs);
  EXPECT_EQ(report.count, 0u);
}

TEST(Intersections, CrossingAwayFromOriginCounts) {
  // B is A's direction shifted so they cross away from the origin.
  std::vector<TrajectoryPoint> pts_b;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts_b.push_back({d, {d + 0.1, 0.2 - d}});
  }
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 1.0}), FaultTrajectory("B", std::move(pts_b))};
  const auto report = count_intersections(trajs);
  EXPECT_GE(report.count, 1u);
  EXPECT_EQ(report.conflicts.front().site_a, "A");
  EXPECT_EQ(report.conflicts.front().site_b, "B");
}

TEST(Intersections, IdenticalTrajectoriesOverlapHeavily) {
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.5}), straight_line("B", {1.0, 0.5})};
  const auto report = count_intersections(trajs);
  EXPECT_GT(report.count, 0u);  // collinear overlaps counted
}

TEST(Intersections, OverlapCountingCanBeDisabled) {
  // Coincident trajectories still touch at shared vertices, but disabling
  // overlap counting must strictly reduce the conflict count.
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.5}), straight_line("B", {1.0, 0.5})};
  IntersectionOptions with_overlaps;
  IntersectionOptions without_overlaps;
  without_overlaps.count_overlaps = false;
  const auto full = count_intersections(trajs, with_overlaps);
  const auto reduced = count_intersections(trajs, without_overlaps);
  EXPECT_LT(reduced.count, full.count);
  for (const auto& c : reduced.conflicts) {
    EXPECT_EQ(c.separation, 0.0);  // only touching contacts remain
  }
}

TEST(Intersections, SingleTrajectoryHasNoConflicts) {
  const std::vector<FaultTrajectory> trajs = {straight_line("A", {1.0, 0.0})};
  EXPECT_EQ(count_intersections(trajs).count, 0u);
  EXPECT_EQ(count_intersections({}).count, 0u);
}

TEST(Intersections, MixedDimensionsRejected) {
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.0}), straight_line("B", {0.0, 1.0, 0.0})};
  EXPECT_THROW(count_intersections(trajs), ConfigError);
}

TEST(Intersections, ThreeDimensionalNearMiss) {
  // In 3-D, exact crossings are non-generic: near-misses below the
  // threshold count instead.
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.0, 0.0}),
      straight_line("B", {0.0, 1.0, 1e-6})};  // hugs the xy plane near A
  IntersectionOptions options;
  options.near_threshold = 0.05;
  const auto report = count_intersections(trajs, options);
  // They only approach near the origin, which is excluded...
  // so move B away from the origin to create a genuine near pass.
  std::vector<TrajectoryPoint> pts;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts.push_back({d, {0.2, d, 0.001}});
  }
  const std::vector<FaultTrajectory> trajs2 = {
      straight_line("A", {1.0, 0.0, 0.0}), FaultTrajectory("B", std::move(pts))};
  const auto report2 = count_intersections(trajs2, options);
  EXPECT_GE(report2.count, 1u);
  EXPECT_GT(report2.conflicts.front().separation, 0.0);
  (void)report;
}

TEST(Intersections, PerConflictMetadataPopulated) {
  std::vector<TrajectoryPoint> pts_b;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts_b.push_back({d, {d + 0.1, 0.2 - d}});
  }
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 1.0}), FaultTrajectory("B", std::move(pts_b))};
  const auto report = count_intersections(trajs);
  ASSERT_FALSE(report.conflicts.empty());
  const auto& c = report.conflicts.front();
  EXPECT_EQ(c.at.size(), 2u);
  EXPECT_GT(norm(c.at), 0.0);
}

TEST(Intersections, CountMatchesConflictListSize) {
  std::vector<TrajectoryPoint> pts_b;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts_b.push_back({d, {d + 0.05, 0.1 - d}});
  }
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 1.0}),
      FaultTrajectory("B", std::move(pts_b)),
      straight_line("C", {0.0, 1.0})};
  const auto report = count_intersections(trajs);
  EXPECT_EQ(report.count, report.conflicts.size());
}

// ---------------------------------------------------------------------
// Differential verification: the grid-pruned sweep must reproduce the
// exact all-pairs sweep verbatim on randomized trajectory sets.

std::vector<FaultTrajectory> random_trajectories(Rng& rng, std::size_t count,
                                                 std::size_t dim) {
  std::vector<FaultTrajectory> out;
  for (std::size_t t = 0; t < count; ++t) {
    // A random direction through the origin with per-vertex wobble, so the
    // set is rich in crossings, near misses and an occasional overlap.
    Point direction(dim);
    for (double& v : direction) v = rng.uniform(-1.0, 1.0);
    const double wobble = rng.uniform(0.0, 0.3);
    std::vector<TrajectoryPoint> pts;
    for (double d : {-0.4, -0.3, -0.2, -0.1, 0.0, 0.1, 0.2, 0.3, 0.4}) {
      Point p(dim);
      for (std::size_t k = 0; k < dim; ++k) {
        p[k] = d * direction[k] + (d == 0.0 ? 0.0 : wobble * d * rng.normal());
      }
      pts.push_back({d, std::move(p)});
    }
    out.emplace_back("T" + std::to_string(t), std::move(pts));
  }
  return out;
}

void expect_identical_reports(const IntersectionReport& exact,
                              const IntersectionReport& pruned) {
  ASSERT_EQ(exact.count, pruned.count);
  ASSERT_EQ(exact.conflicts.size(), pruned.conflicts.size());
  for (std::size_t c = 0; c < exact.conflicts.size(); ++c) {
    const auto& e = exact.conflicts[c];
    const auto& p = pruned.conflicts[c];
    EXPECT_EQ(e.site_a, p.site_a);
    EXPECT_EQ(e.site_b, p.site_b);
    EXPECT_EQ(e.segment_a, p.segment_a);
    EXPECT_EQ(e.segment_b, p.segment_b);
    EXPECT_EQ(e.at, p.at);
    EXPECT_EQ(e.separation, p.separation);
  }
}

TEST(PrunedIntersections, MatchesExactSweepOn2dRandomSets) {
  Rng rng(20250731);
  for (int round = 0; round < 60; ++round) {
    const std::size_t count =
        static_cast<std::size_t>(rng.uniform_int(2, 14));
    const auto trajs = random_trajectories(rng, count, 2);
    IntersectionOptions exact_options;
    exact_options.algorithm = IntersectionAlgorithm::kExact;
    IntersectionOptions pruned_options;
    pruned_options.algorithm = IntersectionAlgorithm::kPruned;
    expect_identical_reports(count_intersections(trajs, exact_options),
                             count_intersections(trajs, pruned_options));
  }
}

TEST(PrunedIntersections, MatchesExactSweepInNearMissMode) {
  Rng rng(777);
  for (std::size_t dim : {3u, 4u, 6u}) {
    for (int round = 0; round < 20; ++round) {
      const auto trajs = random_trajectories(rng, 10, dim);
      IntersectionOptions exact_options;
      exact_options.algorithm = IntersectionAlgorithm::kExact;
      // A fat threshold so near misses actually fire.
      exact_options.near_threshold = 0.1;
      IntersectionOptions pruned_options = exact_options;
      pruned_options.algorithm = IntersectionAlgorithm::kPruned;
      const auto exact = count_intersections(trajs, exact_options);
      expect_identical_reports(exact,
                               count_intersections(trajs, pruned_options));
    }
  }
}

TEST(PrunedIntersections, MatchesExactWithOverlapCountingDisabled) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const auto trajs = random_trajectories(rng, 8, 2);
    IntersectionOptions exact_options;
    exact_options.algorithm = IntersectionAlgorithm::kExact;
    exact_options.count_overlaps = false;
    IntersectionOptions pruned_options = exact_options;
    pruned_options.algorithm = IntersectionAlgorithm::kPruned;
    expect_identical_reports(count_intersections(trajs, exact_options),
                             count_intersections(trajs, pruned_options));
  }
}

TEST(PrunedIntersections, CountOnlyModeReportsTheSameCount) {
  Rng rng(4242);
  for (int round = 0; round < 30; ++round) {
    const std::size_t dim = round % 2 == 0 ? 2 : 3;
    const auto trajs = random_trajectories(rng, 9, dim);
    for (auto algorithm :
         {IntersectionAlgorithm::kExact, IntersectionAlgorithm::kPruned}) {
      IntersectionOptions collecting;
      collecting.algorithm = algorithm;
      collecting.near_threshold = 0.05;
      IntersectionOptions count_only = collecting;
      count_only.collect_conflicts = false;
      const auto full = count_intersections(trajs, collecting);
      const auto bare = count_intersections(trajs, count_only);
      EXPECT_EQ(full.count, bare.count);
      EXPECT_EQ(full.count, full.conflicts.size());
      EXPECT_TRUE(bare.conflicts.empty());
    }
  }
}

TEST(PrunedIntersections, HandlesCoincidentAndDegenerateSets) {
  // Identical trajectories (everything overlaps) and axis-aligned lines
  // (zero extent on one axis) exercise the grid's degenerate paths.
  const std::vector<FaultTrajectory> coincident = {
      straight_line("A", {1.0, 0.5}), straight_line("B", {1.0, 0.5}),
      straight_line("C", {1.0, 0.5})};
  const std::vector<FaultTrajectory> flat = {
      straight_line("A", {1.0, 0.0}), straight_line("B", {2.0, 0.0})};
  for (const auto* trajs : {&coincident, &flat}) {
    IntersectionOptions exact_options;
    exact_options.algorithm = IntersectionAlgorithm::kExact;
    IntersectionOptions pruned_options;
    pruned_options.algorithm = IntersectionAlgorithm::kPruned;
    expect_identical_reports(count_intersections(*trajs, exact_options),
                             count_intersections(*trajs, pruned_options));
  }
}

}  // namespace
}  // namespace ftdiag::core
