#include "core/intersection.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ftdiag::core {
namespace {

FaultTrajectory straight_line(const std::string& site, Point direction,
                              std::size_t dim = 2) {
  (void)dim;
  std::vector<TrajectoryPoint> pts;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    Point p(direction.size());
    for (std::size_t i = 0; i < direction.size(); ++i) p[i] = d * direction[i];
    pts.push_back({d, std::move(p)});
  }
  return FaultTrajectory(site, std::move(pts));
}

TEST(Intersections, TwoSeparatedLinesThroughOriginDoNotCount) {
  // Both trajectories pass through the shared origin; that structural
  // contact must not count as an intersection.
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.0}), straight_line("B", {0.0, 1.0})};
  const auto report = count_intersections(trajs);
  EXPECT_EQ(report.count, 0u);
}

TEST(Intersections, CrossingAwayFromOriginCounts) {
  // B is A's direction shifted so they cross away from the origin.
  std::vector<TrajectoryPoint> pts_b;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts_b.push_back({d, {d + 0.1, 0.2 - d}});
  }
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 1.0}), FaultTrajectory("B", std::move(pts_b))};
  const auto report = count_intersections(trajs);
  EXPECT_GE(report.count, 1u);
  EXPECT_EQ(report.conflicts.front().site_a, "A");
  EXPECT_EQ(report.conflicts.front().site_b, "B");
}

TEST(Intersections, IdenticalTrajectoriesOverlapHeavily) {
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.5}), straight_line("B", {1.0, 0.5})};
  const auto report = count_intersections(trajs);
  EXPECT_GT(report.count, 0u);  // collinear overlaps counted
}

TEST(Intersections, OverlapCountingCanBeDisabled) {
  // Coincident trajectories still touch at shared vertices, but disabling
  // overlap counting must strictly reduce the conflict count.
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.5}), straight_line("B", {1.0, 0.5})};
  IntersectionOptions with_overlaps;
  IntersectionOptions without_overlaps;
  without_overlaps.count_overlaps = false;
  const auto full = count_intersections(trajs, with_overlaps);
  const auto reduced = count_intersections(trajs, without_overlaps);
  EXPECT_LT(reduced.count, full.count);
  for (const auto& c : reduced.conflicts) {
    EXPECT_EQ(c.separation, 0.0);  // only touching contacts remain
  }
}

TEST(Intersections, SingleTrajectoryHasNoConflicts) {
  const std::vector<FaultTrajectory> trajs = {straight_line("A", {1.0, 0.0})};
  EXPECT_EQ(count_intersections(trajs).count, 0u);
  EXPECT_EQ(count_intersections({}).count, 0u);
}

TEST(Intersections, MixedDimensionsRejected) {
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.0}), straight_line("B", {0.0, 1.0, 0.0})};
  EXPECT_THROW(count_intersections(trajs), ConfigError);
}

TEST(Intersections, ThreeDimensionalNearMiss) {
  // In 3-D, exact crossings are non-generic: near-misses below the
  // threshold count instead.
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 0.0, 0.0}),
      straight_line("B", {0.0, 1.0, 1e-6})};  // hugs the xy plane near A
  IntersectionOptions options;
  options.near_threshold = 0.05;
  const auto report = count_intersections(trajs, options);
  // They only approach near the origin, which is excluded...
  // so move B away from the origin to create a genuine near pass.
  std::vector<TrajectoryPoint> pts;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts.push_back({d, {0.2, d, 0.001}});
  }
  const std::vector<FaultTrajectory> trajs2 = {
      straight_line("A", {1.0, 0.0, 0.0}), FaultTrajectory("B", std::move(pts))};
  const auto report2 = count_intersections(trajs2, options);
  EXPECT_GE(report2.count, 1u);
  EXPECT_GT(report2.conflicts.front().separation, 0.0);
  (void)report;
}

TEST(Intersections, PerConflictMetadataPopulated) {
  std::vector<TrajectoryPoint> pts_b;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts_b.push_back({d, {d + 0.1, 0.2 - d}});
  }
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 1.0}), FaultTrajectory("B", std::move(pts_b))};
  const auto report = count_intersections(trajs);
  ASSERT_FALSE(report.conflicts.empty());
  const auto& c = report.conflicts.front();
  EXPECT_EQ(c.at.size(), 2u);
  EXPECT_GT(norm(c.at), 0.0);
}

TEST(Intersections, CountMatchesConflictListSize) {
  std::vector<TrajectoryPoint> pts_b;
  for (double d : {-0.4, -0.2, 0.0, 0.2, 0.4}) {
    pts_b.push_back({d, {d + 0.05, 0.1 - d}});
  }
  const std::vector<FaultTrajectory> trajs = {
      straight_line("A", {1.0, 1.0}),
      FaultTrajectory("B", std::move(pts_b)),
      straight_line("C", {0.0, 1.0})};
  const auto report = count_intersections(trajs);
  EXPECT_EQ(report.count, report.conflicts.size());
}

}  // namespace
}  // namespace ftdiag::core
