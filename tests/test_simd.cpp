/// Property and differential tests of the SIMD kernel layer
/// (src/linalg/simd.hpp and its consumers): pack operations lane by lane
/// against plain doubles, the Sherman–Morrison sweep against its scalar
/// twin at every remainder shape and alignment offset, the batched LU
/// against the scalar dense LU, the sparse zero-prefix skip against the
/// dense solve, and diagnose() against diagnose_scalar().  The whole file
/// also runs in the FTDIAG_SIMD=OFF build, where DefaultPack is
/// ScalarPack — the forced-scalar configuration must satisfy the same
/// contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <random>
#include <vector>

#include "core/diagnosis.hpp"
#include "core/trajectory.hpp"
#include "linalg/batch_lu.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/rank1.hpp"
#include "linalg/simd.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_factorization.hpp"

namespace ftdiag {
namespace {

namespace simd = linalg::simd;
using linalg::Complex;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relative bound the SIMD kernel contract guarantees against the scalar
/// twin (src/linalg/README.md); empirically the values are bit-equal.
constexpr double kKernelRelTol = 1e-12;

void expect_rel_close(double a, double b, const std::string& context) {
  if (std::isnan(a) || std::isnan(b)) {
    EXPECT_TRUE(std::isnan(a) && std::isnan(b)) << context;
    return;
  }
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  EXPECT_LE(std::fabs(a - b), kKernelRelTol * scale) << context;
}

// ------------------------------------------------------------- pack ops

template <typename P>
void pack_roundtrip_case() {
  constexpr std::size_t kW = P::width;
  // Load/store through every 8-byte offset of an aligned buffer: the
  // contract requires only element alignment.
  simd::AlignedVector buffer(kW + 8, 0.0);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  for (std::size_t offset = 0; offset < 8; ++offset) {
    for (std::size_t i = 0; i < kW; ++i) buffer[offset + i] = dist(rng);
    const P p = P::load(buffer.data() + offset);
    for (std::size_t lane = 0; lane < kW; ++lane) {
      EXPECT_EQ(p[lane], buffer[offset + lane]) << "offset " << offset;
    }
    std::vector<double> out(kW, 0.0);
    p.store(out.data());
    for (std::size_t lane = 0; lane < kW; ++lane) {
      EXPECT_EQ(out[lane], buffer[offset + lane]);
    }
  }
}

TEST(SimdPacks, LoadStoreRoundTripsAtAnyOffset) {
  pack_roundtrip_case<simd::ScalarPack>();
  pack_roundtrip_case<simd::DefaultPack>();
}

template <typename P>
void pack_arithmetic_case() {
  constexpr std::size_t kW = P::width;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::vector<double> a(kW), b(kW);
  for (std::size_t i = 0; i < kW; ++i) {
    a[i] = dist(rng);
    b[i] = dist(rng);
  }
  const P pa = P::load(a.data());
  const P pb = P::load(b.data());
  for (std::size_t lane = 0; lane < kW; ++lane) {
    EXPECT_EQ((pa + pb)[lane], a[lane] + b[lane]);
    EXPECT_EQ((pa - pb)[lane], a[lane] - b[lane]);
    EXPECT_EQ((pa * pb)[lane], a[lane] * b[lane]);
    EXPECT_EQ((pa / pb)[lane], a[lane] / b[lane]);
    EXPECT_EQ((-pa)[lane], -a[lane]);
    EXPECT_EQ(simd::sqrt(pa * pa)[lane], std::sqrt(a[lane] * a[lane]));
    EXPECT_EQ(simd::max(pa, pb)[lane], std::max(a[lane], b[lane]));
    EXPECT_EQ(simd::min(pa, pb)[lane], std::min(a[lane], b[lane]));
    EXPECT_EQ((pa < pb)[lane], a[lane] < b[lane]);
    EXPECT_EQ(simd::select(pa < pb, pa, pb)[lane],
              a[lane] < b[lane] ? a[lane] : b[lane]);
  }
}

TEST(SimdPacks, ArithmeticMatchesScalarLaneByLane) {
  pack_arithmetic_case<simd::ScalarPack>();
  pack_arithmetic_case<simd::DefaultPack>();
}

template <typename P>
void finite_mask_case() {
  constexpr std::size_t kW = P::width;
  const double specials[] = {0.0,  -0.0, 1.5,  kNan,
                             kInf, -kInf, -2.25, 1e300};
  std::vector<double> values(kW);
  for (std::size_t start = 0; start < 8; ++start) {
    for (std::size_t i = 0; i < kW; ++i) values[i] = specials[(start + i) % 8];
    const auto mask = simd::finite_mask(P::load(values.data()));
    for (std::size_t lane = 0; lane < kW; ++lane) {
      EXPECT_EQ(mask[lane], std::isfinite(values[lane]))
          << "lane " << lane << " value " << values[lane];
    }
  }
}

TEST(SimdPacks, FiniteMaskMatchesStdIsfinite) {
  finite_mask_case<simd::ScalarPack>();
  finite_mask_case<simd::DefaultPack>();
}

template <typename P>
void cpack_case() {
  constexpr std::size_t kW = P::width;
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  simd::AlignedVector a_re(kW), a_im(kW), b_re(kW), b_im(kW);
  for (std::size_t i = 0; i < kW; ++i) {
    a_re[i] = dist(rng);
    a_im[i] = dist(rng);
    b_re[i] = dist(rng);
    b_im[i] = dist(rng);
  }
  using C = simd::CPack<P>;
  const C a = C::load(a_re.data(), a_im.data());
  const C b = C::load(b_re.data(), b_im.data());
  for (std::size_t lane = 0; lane < kW; ++lane) {
    const Complex za(a_re[lane], a_im[lane]);
    const Complex zb(b_re[lane], b_im[lane]);
    EXPECT_EQ((a + b).lane(lane), za + zb);
    EXPECT_EQ((a - b).lane(lane), za - zb);
    // Multiplication is the textbook formula std::complex also uses, but
    // multiply-add contraction can differ between the two inline
    // contexts, so equality holds to rounding, not bitwise.
    const Complex p = (a * b).lane(lane);
    const Complex ps = za * zb;
    expect_rel_close(p.real(), ps.real(), "mul re");
    expect_rel_close(p.imag(), ps.imag(), "mul im");
    // Division uses conj/|.|^2 instead of libm's scaled __divdc3: equal
    // up to rounding, not bitwise.
    const Complex q = (a / b).lane(lane);
    const Complex qs = za / zb;
    expect_rel_close(q.real(), qs.real(), "div re");
    expect_rel_close(q.imag(), qs.imag(), "div im");
    expect_rel_close(a.norm()[lane], std::norm(za), "norm");
  }
}

TEST(SimdPacks, ComplexPackMatchesStdComplex) {
  cpack_case<simd::ScalarPack>();
  cpack_case<simd::DefaultPack>();
}

// ----------------------------------------- Sherman–Morrison sweep twin

/// One randomized split-plane input set of length \p count, with a few
/// NaN/Inf scales and near-singular denominators mixed in to exercise the
/// refusal mask.
struct SweepInput {
  std::vector<double> scale_re, scale_im, vx0_re, vx0_im, vw_re, vw_im;
  std::vector<double> x0_re, x0_im, w_re, w_im;

  explicit SweepInput(std::size_t count, unsigned seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    auto fill = [&](std::vector<double>& v) {
      v.resize(count);
      for (double& x : v) x = dist(rng);
    };
    fill(scale_re);
    fill(scale_im);
    fill(vx0_re);
    fill(vx0_im);
    fill(vw_re);
    fill(vw_im);
    fill(x0_re);
    fill(x0_im);
    fill(w_re);
    fill(w_im);
    for (std::size_t i = 0; i < count; ++i) {
      switch (i % 7) {
        case 2:  // force denom ~ -1 + tiny: growth refusal
          scale_re[i] = -1.0 / vw_re[i] * (vw_re[i] * vw_re[i] + vw_im[i] * vw_im[i]) /
                        (vw_re[i] * vw_re[i] + vw_im[i] * vw_im[i]);
          break;
        case 4:
          scale_re[i] = kNan;
          break;
        case 5:
          scale_im[i] = kInf;
          break;
        default:
          break;
      }
    }
  }
};

template <typename P>
void sweep_twin_case(std::size_t count, unsigned seed, double max_growth) {
  SweepInput in(count, seed);
  constexpr double kSentinel = -777.25;
  std::vector<double> out_re_a(count, kSentinel), out_im_a(count, kSentinel);
  std::vector<double> out_re_b(count, kSentinel), out_im_b(count, kSentinel);
  std::vector<unsigned char> refused_a(count, 9), refused_b(count, 9);

  const std::size_t ra = linalg::sherman_morrison_sweep(
      count, in.scale_re.data(), in.scale_im.data(), in.vx0_re.data(),
      in.vx0_im.data(), in.vw_re.data(), in.vw_im.data(), in.x0_re.data(),
      in.x0_im.data(), in.w_re.data(), in.w_im.data(), max_growth,
      out_re_a.data(), out_im_a.data(), refused_a.data());
  const std::size_t rb = linalg::sherman_morrison_sweep_simd<P>(
      count, in.scale_re.data(), in.scale_im.data(), in.vx0_re.data(),
      in.vx0_im.data(), in.vw_re.data(), in.vw_im.data(), in.x0_re.data(),
      in.x0_im.data(), in.w_re.data(), in.w_im.data(), max_growth,
      out_re_b.data(), out_im_b.data(), refused_b.data());

  EXPECT_EQ(ra, rb) << "count " << count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string at = "count " + std::to_string(count) + " i " +
                           std::to_string(i);
    ASSERT_EQ(refused_a[i], refused_b[i]) << at;
    if (refused_a[i]) {
      // Refused slots stay untouched in both kernels.
      EXPECT_EQ(out_re_a[i], kSentinel) << at;
      EXPECT_EQ(out_re_b[i], kSentinel) << at;
      EXPECT_EQ(out_im_b[i], kSentinel) << at;
    } else {
      expect_rel_close(out_re_a[i], out_re_b[i], at + " re");
      expect_rel_close(out_im_a[i], out_im_b[i], at + " im");
    }
  }
}

TEST(ShermanMorrisonSweepSimd, MatchesScalarTwinAtEveryRemainderShape) {
  constexpr std::size_t kW = simd::DefaultPack::width;
  const std::size_t counts[] = {0,      1,          kW - 1, kW,
                                kW + 1, 2 * kW + 3, 33};
  unsigned seed = 100;
  for (std::size_t count : counts) {
    sweep_twin_case<simd::DefaultPack>(count, ++seed, 1e8);
    sweep_twin_case<simd::ScalarPack>(count, ++seed, 1e8);
    // A tight growth bound turns most entries into refusals.
    sweep_twin_case<simd::DefaultPack>(count, ++seed, 1.5);
  }
}

TEST(ShermanMorrisonSweepSimd, MatchesScalarTwinAtUnalignedOffsets) {
  // The kernel must accept pointers at any 8-byte boundary: offset every
  // plane by one double and compare against the scalar twin on the same
  // offset views.
  constexpr std::size_t kCount = 37;
  SweepInput in(kCount + 1, 42);
  std::vector<double> out_re_a(kCount, 0.0), out_im_a(kCount, 0.0);
  std::vector<double> out_re_b(kCount, 0.0), out_im_b(kCount, 0.0);
  std::vector<unsigned char> refused_a(kCount, 0), refused_b(kCount, 0);
  const std::size_t ra = linalg::sherman_morrison_sweep(
      kCount, in.scale_re.data() + 1, in.scale_im.data() + 1,
      in.vx0_re.data() + 1, in.vx0_im.data() + 1, in.vw_re.data() + 1,
      in.vw_im.data() + 1, in.x0_re.data() + 1, in.x0_im.data() + 1,
      in.w_re.data() + 1, in.w_im.data() + 1, 1e8, out_re_a.data(),
      out_im_a.data(), refused_a.data());
  const std::size_t rb = linalg::sherman_morrison_sweep_simd<>(
      kCount, in.scale_re.data() + 1, in.scale_im.data() + 1,
      in.vx0_re.data() + 1, in.vx0_im.data() + 1, in.vw_re.data() + 1,
      in.vw_im.data() + 1, in.x0_re.data() + 1, in.x0_im.data() + 1,
      in.w_re.data() + 1, in.w_im.data() + 1, 1e8, out_re_b.data(),
      out_im_b.data(), refused_b.data());
  EXPECT_EQ(ra, rb);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(refused_a[i], refused_b[i]) << i;
    if (!refused_a[i]) {
      expect_rel_close(out_re_a[i], out_re_b[i], "re @ " + std::to_string(i));
      expect_rel_close(out_im_a[i], out_im_b[i], "im @ " + std::to_string(i));
    }
  }
}

// --------------------------------------------------- batched LU vs dense

/// Random diagonally-dominant complex system (always well-conditioned).
linalg::Matrix<Complex> random_system(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Matrix<Complex> a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = Complex(dist(rng), dist(rng));
    }
    a(r, r) += Complex(4.0 + static_cast<double>(n), 2.0);
  }
  return a;
}

template <typename P>
void batch_lu_case(std::size_t n, unsigned seed) {
  constexpr std::size_t kW = P::width;
  // One independent system per lane.
  std::vector<linalg::Matrix<Complex>> systems;
  systems.reserve(kW);
  for (std::size_t lane = 0; lane < kW; ++lane) {
    systems.push_back(random_system(n, seed + static_cast<unsigned>(lane)));
  }
  linalg::BatchLu<P> batch;
  batch.reshape(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t lane = 0; lane < kW; ++lane) {
        batch.re_at(r, c)[lane] = systems[lane](r, c).real();
        batch.im_at(r, c)[lane] = systems[lane](r, c).imag();
      }
    }
  }
  batch.factor();

  std::mt19937_64 rng(seed + 999);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Complex> b(n);
  for (auto& v : b) v = Complex(dist(rng), dist(rng));

  std::vector<double> x_re(n * kW), x_im(n * kW);
  batch.solve_shared(b, x_re.data(), x_im.data());

  for (std::size_t lane = 0; lane < kW; ++lane) {
    const linalg::LuFactorization<Complex> lu(systems[lane]);
    const std::vector<Complex> x = lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string at = "n " + std::to_string(n) + " lane " +
                             std::to_string(lane) + " i " + std::to_string(i);
      expect_rel_close(x_re[i * kW + lane], x[i].real(), at + " re");
      expect_rel_close(x_im[i * kW + lane], x[i].imag(), at + " im");
    }
  }

  // Multi-RHS: 3 shared columns, planes [(c*n + i) * kW + lane].
  const std::size_t cols = 3;
  std::vector<Complex> block(n * cols);
  for (auto& v : block) v = Complex(dist(rng), dist(rng));
  std::vector<double> y_re(n * cols * kW), y_im(n * cols * kW);
  batch.solve_shared_multi(block, cols, y_re.data(), y_im.data());
  for (std::size_t lane = 0; lane < kW; ++lane) {
    const linalg::LuFactorization<Complex> lu(systems[lane]);
    for (std::size_t c = 0; c < cols; ++c) {
      const std::vector<Complex> col(block.begin() + c * n,
                                     block.begin() + (c + 1) * n);
      const std::vector<Complex> x = lu.solve(col);
      for (std::size_t i = 0; i < n; ++i) {
        expect_rel_close(y_re[(c * n + i) * kW + lane], x[i].real(), "multi re");
        expect_rel_close(y_im[(c * n + i) * kW + lane], x[i].imag(), "multi im");
      }
    }
  }
}

TEST(BatchLu, MatchesScalarDenseLuPerLane) {
  for (std::size_t n : {1, 2, 5, 17, 40}) {
    batch_lu_case<simd::DefaultPack>(n, 500 + static_cast<unsigned>(n));
    batch_lu_case<simd::ScalarPack>(n, 900 + static_cast<unsigned>(n));
  }
}

TEST(BatchLu, ThrowsOnSingularLane) {
  constexpr std::size_t kW = simd::DefaultPack::width;
  linalg::BatchLu<simd::DefaultPack> batch;
  batch.reshape(2);
  // Lane 0 gets a singular matrix (duplicate rows); other lanes identity.
  for (std::size_t lane = 0; lane < kW; ++lane) {
    const bool singular = lane == 0;
    batch.re_at(0, 0)[lane] = 1.0;
    batch.re_at(0, 1)[lane] = 2.0;
    batch.re_at(1, 0)[lane] = singular ? 1.0 : 0.0;
    batch.re_at(1, 1)[lane] = singular ? 2.0 : 1.0;
  }
  EXPECT_THROW(batch.factor(), NumericError);
}

// ----------------------------------------- sparse zero-prefix skip (S1)

TEST(SparsePrefixSkip, MatchesDenseSolveOnSparseRhs) {
  // A banded system whose RHS is zero except near the bottom — the shape
  // the golden sweep's excitation vectors have.  The sparse solve (with
  // the structurally-zero prefix skip) must agree with the dense LU.
  const std::size_t n = 60;
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::CooMatrix<Complex> coo(n, n);
  linalg::Matrix<Complex> dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i > 2 ? i - 3 : 0; j < std::min(n, i + 4); ++j) {
      const Complex v = i == j ? Complex(8.0 + dist(rng), 3.0)
                               : Complex(dist(rng), dist(rng));
      coo.add(i, j, v);
      dense(i, j) += v;
    }
  }
  const linalg::SparseFactorization<Complex> sparse(coo);
  const linalg::LuFactorization<Complex> lu(dense);

  for (std::size_t nonzeros : {0u, 1u, 3u}) {
    std::vector<Complex> b(n, Complex{});
    for (std::size_t k = 0; k < nonzeros; ++k) {
      b[n - 1 - 2 * k] = Complex(dist(rng), dist(rng));
    }
    std::vector<Complex> xs(n), xd(n);
    sparse.solve_into(b, xs);
    lu.solve_into(b, xd);
    for (std::size_t i = 0; i < n; ++i) {
      expect_rel_close(xs[i].real(), xd[i].real(), "sparse re");
      expect_rel_close(xs[i].imag(), xd[i].imag(), "sparse im");
    }

    // Blocked overload, shifted columns (different zero prefixes).
    linalg::Matrix<Complex> bm(n, 2), xm;
    for (std::size_t i = 0; i < n; ++i) {
      bm(i, 0) = b[i];
      bm(i, 1) = i + 5 < n ? b[i + 5] : Complex{};
    }
    sparse.solve_into(bm, xm);
    for (std::size_t c = 0; c < 2; ++c) {
      std::vector<Complex> col(n);
      for (std::size_t i = 0; i < n; ++i) col[i] = bm(i, c);
      const std::vector<Complex> ref = lu.solve(col);
      for (std::size_t i = 0; i < n; ++i) {
        expect_rel_close(xm(i, c).real(), ref[i].real(), "blocked re");
        expect_rel_close(xm(i, c).imag(), ref[i].imag(), "blocked im");
      }
    }
  }
}

// ---------------------------------------------- diagnose vs scalar twin

TEST(DiagnoseSimd, MatchesScalarDiagnoseOnRandomTrajectories) {
  std::mt19937_64 rng(2026);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  const std::size_t dim = 5;
  std::vector<core::FaultTrajectory> trajectories;
  for (std::size_t t = 0; t < 9; ++t) {
    std::vector<core::TrajectoryPoint> points;
    const std::size_t count = 2 + t % 6;  // 1..6 segments
    double deviation = -0.4;
    for (std::size_t p = 0; p < count; ++p) {
      core::Point coords(dim);
      for (double& x : coords) x = dist(rng);
      points.push_back({deviation, std::move(coords)});
      deviation += 0.15;
    }
    trajectories.emplace_back("site" + std::to_string(t), std::move(points));
  }
  const core::DiagnosisEngine engine(std::move(trajectories));

  for (std::size_t trial = 0; trial < 50; ++trial) {
    core::Point observed(dim);
    for (double& x : observed) x = dist(rng);
    const core::Diagnosis wide = engine.diagnose(observed);
    const core::Diagnosis scalar = engine.diagnose_scalar(observed);
    ASSERT_EQ(wide.ranking.size(), scalar.ranking.size());
    for (std::size_t i = 0; i < wide.ranking.size(); ++i) {
      const std::string at = "trial " + std::to_string(trial) + " rank " +
                             std::to_string(i);
      EXPECT_EQ(wide.ranking[i].site, scalar.ranking[i].site) << at;
      EXPECT_EQ(wide.ranking[i].segment_index,
                scalar.ranking[i].segment_index)
          << at;
      expect_rel_close(wide.ranking[i].distance, scalar.ranking[i].distance,
                       at + " distance");
      expect_rel_close(wide.ranking[i].t, scalar.ranking[i].t, at + " t");
      expect_rel_close(wide.ranking[i].estimated_deviation,
                       scalar.ranking[i].estimated_deviation,
                       at + " deviation");
    }
  }
}

}  // namespace
}  // namespace ftdiag
