#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuits/nf_biquad.hpp"
#include "circuits/tow_thomas.hpp"
#include "faults/fault_injector.hpp"
#include "mna/ac_analysis.hpp"
#include "util/error.hpp"

namespace ftdiag::core {
namespace {

class SensitivityTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    cut_ = new circuits::CircuitUnderTest(circuits::make_paper_cut());
    curves_ = new std::vector<SensitivityCurve>(compute_sensitivities(
        *cut_, mna::FrequencyGrid::log_sweep(10.0, 100e3, 120)));
  }
  static void TearDownTestSuite() {
    delete curves_;
    delete cut_;
    curves_ = nullptr;
    cut_ = nullptr;
  }
  static circuits::CircuitUnderTest* cut_;
  static std::vector<SensitivityCurve>* curves_;

  const SensitivityCurve& curve(const std::string& site) const {
    for (const auto& c : *curves_) {
      if (c.site == site) return c;
    }
    throw std::runtime_error("no curve for " + site);
  }
};

circuits::CircuitUnderTest* SensitivityTest::cut_ = nullptr;
std::vector<SensitivityCurve>* SensitivityTest::curves_ = nullptr;

TEST_F(SensitivityTest, OneCurvePerTestable) {
  EXPECT_EQ(curves_->size(), 7u);
  for (const auto& c : *curves_) {
    EXPECT_EQ(c.values.size(), c.frequencies_hz.size());
    EXPECT_EQ(c.values.size(), 120u);
  }
}

TEST_F(SensitivityTest, GainComponentsHaveFlatPassbandSensitivity) {
  // Rb raises the divider ratio: |H| grows with Rb everywhere in the
  // passband; its DC sensitivity is alpha-related and positive.
  const auto& rb = curve("Rb");
  EXPECT_GT(rb.values.front(), 0.0);
  // Ra does the opposite.
  EXPECT_LT(curve("Ra").values.front(), 0.0);
}

TEST_F(SensitivityTest, CapacitorsHaveNoDcSensitivity) {
  // The grid starts at 10 Hz = f0/100, so the residual capacitor
  // sensitivity is O((f/f0)^2) = O(1e-4), not exactly zero.
  for (const char* site : {"C1", "C2"}) {
    EXPECT_NEAR(curve(site).values.front(), 0.0, 5e-4) << site;
    EXPECT_GT(curve(site).peak_magnitude(),
              1e3 * std::fabs(curve(site).values.front()))
        << site;
  }
}

TEST_F(SensitivityTest, CapacitorSensitivityPeaksNearCorner) {
  for (const char* site : {"C1", "C2"}) {
    const double peak = curve(site).peak_frequency();
    EXPECT_GT(peak, 300.0) << site;
    EXPECT_LT(peak, 4000.0) << site;
  }
}

TEST_F(SensitivityTest, MatchesDirectFiniteDeviation) {
  // S predicts the response change for a small deviation: |H(x*1.02)| ~
  // |H| + 0.02 * S at every frequency.
  const auto& r2 = curve("R2");
  const auto faulty = faults::inject(
      cut_->circuit, {faults::FaultSite::value_of("R2"), 0.02});
  mna::AcAnalysis nominal(cut_->circuit);
  mna::AcAnalysis perturbed(faulty);
  for (std::size_t i = 0; i < r2.frequencies_hz.size(); i += 17) {
    const double f = r2.frequencies_hz[i];
    const double predicted = 0.02 * r2.values[i];
    const double actual =
        std::abs(perturbed.node_voltage(f, "out")) -
        std::abs(nominal.node_voltage(f, "out"));
    EXPECT_NEAR(actual, predicted, 5e-4 + 0.05 * std::fabs(predicted))
        << "f = " << f;
  }
}

TEST_F(SensitivityTest, PairwiseAngleBoundsAndSymmetry) {
  const double angle_ab =
      pairwise_separation_angle(curve("Ra"), curve("Rb"), 300.0, 1500.0);
  const double angle_ba =
      pairwise_separation_angle(curve("Rb"), curve("Ra"), 300.0, 1500.0);
  EXPECT_DOUBLE_EQ(angle_ab, angle_ba);
  EXPECT_GE(angle_ab, 0.0);
  EXPECT_LE(angle_ab, 90.0);
}

TEST_F(SensitivityTest, SelfAngleIsZero) {
  EXPECT_NEAR(
      pairwise_separation_angle(curve("R2"), curve("R2"), 300.0, 1500.0), 0.0,
      1e-9);
}

TEST_F(SensitivityTest, MinAngleIsTheWorstPair) {
  const double min_angle = min_separation_angle(*curves_, 500.0, 1500.0);
  for (std::size_t i = 0; i < curves_->size(); ++i) {
    for (std::size_t j = i + 1; j < curves_->size(); ++j) {
      EXPECT_LE(min_angle - 1e-12,
                pairwise_separation_angle((*curves_)[i], (*curves_)[j], 500.0,
                                          1500.0));
    }
  }
}

TEST_F(SensitivityTest, ScreeningReturnsOrderedPairs) {
  const auto pairs = screen_frequency_pairs(*curves_, 20, 5);
  ASSERT_EQ(pairs.size(), 5u);
  double prev = 91.0;
  for (const auto& [f1, f2] : pairs) {
    const double angle = min_separation_angle(*curves_, f1, f2);
    EXPECT_LE(angle, prev + 1e-12);
    prev = angle;
    EXPECT_LT(f1, f2);
  }
}

TEST_F(SensitivityTest, ScreenedPairBeatsDegeneratePair) {
  const auto pairs = screen_frequency_pairs(*curves_, 24, 1);
  const double best = min_separation_angle(*curves_, pairs[0].first,
                                           pairs[0].second);
  // Two passband frequencies see mostly the same information.
  const double bad = min_separation_angle(*curves_, 12.0, 15.0);
  EXPECT_GT(best, bad);
}

TEST(SensitivityTowThomas, DegenerateComponentsAreCollinearEverywhere) {
  // R4 and R6 enter H only via k/R6: their sensitivity directions must be
  // parallel at EVERY frequency pair (separation angle ~ 0).
  const auto cut = circuits::make_tow_thomas();
  const auto curves = compute_sensitivities(
      cut, mna::FrequencyGrid::log_sweep(10.0, 100e3, 60));
  const SensitivityCurve* r4 = nullptr;
  const SensitivityCurve* r6 = nullptr;
  for (const auto& c : curves) {
    if (c.site == "R4") r4 = &c;
    if (c.site == "R6") r6 = &c;
  }
  ASSERT_TRUE(r4 && r6);
  for (double f1 : {50.0, 300.0, 900.0, 2500.0}) {
    for (double f2 : {120.0, 1500.0, 8000.0}) {
      EXPECT_NEAR(pairwise_separation_angle(*r4, *r6, f1, f2), 0.0, 0.05)
          << f1 << "/" << f2;
    }
  }
}

TEST_F(SensitivityTest, NdAngleMatchesPairwiseForTwoFrequencies) {
  for (double f1 : {40.0, 700.0, 5000.0}) {
    for (double f2 : {150.0, 2000.0, 60000.0}) {
      // The 2-D overload uses std::hypot for the norms, so agreement is to
      // rounding error rather than bit-exact.
      const double pairwise = min_separation_angle(*curves_, f1, f2);
      EXPECT_NEAR(min_separation_angle(*curves_, {f1, f2}), pairwise,
                  1e-6 * (1.0 + pairwise));
    }
  }
}

TEST_F(SensitivityTest, TupleScreenMatchesPairScreenForSizeTwo) {
  const auto pairs = screen_frequency_pairs(*curves_, 20, 5);
  const auto tuples = screen_frequency_tuples(*curves_, 20, 5, 2);
  ASSERT_EQ(pairs.size(), tuples.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(tuples[i].size(), 2u);
    EXPECT_DOUBLE_EQ(tuples[i][0], pairs[i].first);
    EXPECT_DOUBLE_EQ(tuples[i][1], pairs[i].second);
  }
}

TEST_F(SensitivityTest, TripleScreenReturnsSortedWellSeparatedTuples) {
  const auto tuples = screen_frequency_tuples(*curves_, 12, 4, 3);
  ASSERT_FALSE(tuples.empty());
  ASSERT_LE(tuples.size(), 4u);
  double previous_angle = 91.0;
  for (const auto& tuple : tuples) {
    ASSERT_EQ(tuple.size(), 3u);
    EXPECT_TRUE(std::is_sorted(tuple.begin(), tuple.end()));
    const double angle = min_separation_angle(*curves_, tuple);
    EXPECT_LE(angle, previous_angle + 1e-12);  // best first
    previous_angle = angle;
  }
}

TEST_F(SensitivityTest, TupleLargerThanGridYieldsNoSeeds) {
  // Distinct frequencies can't outnumber the candidate grid; screening is
  // best-effort and must return empty instead of reading out of bounds.
  EXPECT_TRUE(screen_frequency_tuples(*curves_, 5, 2, 6).empty());
  EXPECT_TRUE(screen_frequency_tuples(*curves_, 5, 2, 100).empty());
}

TEST_F(SensitivityTest, SingleFrequencyScreenFallsBackToPeaks) {
  const auto tuples = screen_frequency_tuples(*curves_, 12, 3, 1);
  ASSERT_FALSE(tuples.empty());
  for (const auto& tuple : tuples) ASSERT_EQ(tuple.size(), 1u);
  // The strongest site's peak leads.
  double best_peak = 0.0;
  double best_f = 0.0;
  for (const auto& c : *curves_) {
    if (c.peak_magnitude() > best_peak) {
      best_peak = c.peak_magnitude();
      best_f = c.peak_frequency();
    }
  }
  EXPECT_DOUBLE_EQ(tuples.front().front(), best_f);
}

TEST(SensitivityErrors, BadInputsRejected) {
  const auto cut = circuits::make_paper_cut();
  SensitivityOptions bad_step;
  bad_step.relative_step = 0.0;
  EXPECT_THROW(compute_sensitivities(
                   cut, mna::FrequencyGrid::log_sweep(10, 1e5, 10), bad_step),
               ConfigError);
  const std::vector<SensitivityCurve> empty;
  EXPECT_THROW(screen_frequency_pairs(empty, 10, 3), ConfigError);
}

}  // namespace
}  // namespace ftdiag::core
