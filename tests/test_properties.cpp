/// Cross-module property tests: invariants that must hold over swept
/// parameters rather than single examples.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/nf_biquad.hpp"
#include "circuits/tow_thomas.hpp"
#include "core/test_vector.hpp"
#include "faults/fault_injector.hpp"
#include "mna/ac_analysis.hpp"
#include "util/rng.hpp"

namespace ftdiag {
namespace {

/// Linearity: scaling the AC source magnitude scales every node phasor.
TEST(MnaProperty, LinearityInSourceAmplitude) {
  for (double amplitude : {0.5, 1.0, 2.0, 10.0}) {
    circuits::NfBiquadDesign design;
    auto cut = circuits::make_nf_biquad(design);
    netlist::Circuit scaled = cut.circuit;
    // Rebuild the source with a different AC magnitude.
    auto base = mna::AcAnalysis(cut.circuit).node_voltage(777.0, "out");
    // Mutate amplitude by replacing the component list via netlist copy:
    // easiest is a fresh circuit where vin has the new magnitude.
    netlist::Circuit fresh;
    for (const auto& c : scaled.components()) {
      netlist::Component copy = c;
      if (c.name == "vin") copy.ac_magnitude = amplitude;
      copy.nodes.clear();
      for (auto n : c.nodes) copy.nodes.push_back(fresh.node(scaled.node_name(n)));
      fresh.add_component(copy);
    }
    auto v = mna::AcAnalysis(fresh).node_voltage(777.0, "out");
    EXPECT_NEAR(std::abs(v), amplitude * std::abs(base), 1e-9 * amplitude);
  }
}

/// Parametric continuity: response changes continuously with deviation.
class ContinuityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ContinuityTest, SmallDeviationSmallResponseChange) {
  const auto cut = circuits::make_paper_cut();
  const std::string site = GetParam();
  const std::vector<double> freqs = {300.0, 1000.0, 3000.0};
  const auto golden =
      mna::AcAnalysis(cut.circuit).sweep(freqs, cut.output_node);
  double prev_dev = 0.0;
  for (double eps : {0.001, 0.01, 0.05, 0.2}) {
    const auto faulty = faults::inject(
        cut.circuit, {faults::FaultSite::value_of(site), eps});
    const auto response =
        mna::AcAnalysis(faulty).sweep(freqs, cut.output_node);
    const double dev = response.max_deviation(golden);
    EXPECT_GE(dev, prev_dev - 1e-12) << site << " @ " << eps;
    prev_dev = dev;
  }
  // A 0.1% deviation must produce a tiny change.
  const auto tiny = faults::inject(
      cut.circuit, {faults::FaultSite::value_of(site), 0.001});
  EXPECT_LT(mna::AcAnalysis(tiny).sweep(freqs, cut.output_node)
                .max_deviation(golden),
            0.01);
}

INSTANTIATE_TEST_SUITE_P(AllSites, ContinuityTest,
                         ::testing::Values("Ra", "Rb", "R1", "R2", "R3", "C1",
                                           "C2"));

/// Fitness invariance: permuting test frequencies never changes fitness.
TEST(CoreProperty, FitnessInvariantUnderFrequencyPermutation) {
  const auto cut = circuits::make_paper_cut();
  const auto dict = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_testable(cut));
  const core::TestVectorEvaluator evaluator(dict);
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const double f1 = std::pow(10.0, rng.uniform(1.0, 5.0));
    const double f2 = std::pow(10.0, rng.uniform(1.0, 5.0));
    core::TestVector fwd{{f1, f2}};
    fwd.normalize();
    core::TestVector rev{{f2, f1}};
    rev.normalize();
    EXPECT_DOUBLE_EQ(evaluator.fitness(fwd), evaluator.fitness(rev));
  }
}

/// Fitness bounds: any test vector scores in (0, 1].
TEST(CoreProperty, FitnessAlwaysInUnitInterval) {
  const auto cut = circuits::make_tow_thomas();  // the nastier CUT
  const auto dict = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_testable(cut));
  const core::TestVectorEvaluator evaluator(dict);
  Rng rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    const double f1 = std::pow(10.0, rng.uniform(1.0, 5.0));
    const double f2 = std::pow(10.0, rng.uniform(1.0, 5.0));
    core::TestVector tv{{f1, f2}};
    tv.normalize();
    const double fitness = evaluator.fitness(tv);
    EXPECT_GT(fitness, 0.0);
    EXPECT_LE(fitness, 1.0);
  }
}

/// Reciprocity-style check: a fault of +x then -x/(1+x) returns to nominal
/// (multiplicative inverse), so the response must return to golden.
TEST(FaultProperty, InverseDeviationRestoresGolden) {
  const auto cut = circuits::make_paper_cut();
  const std::vector<double> freqs = {500.0, 2000.0};
  const auto golden =
      mna::AcAnalysis(cut.circuit).sweep(freqs, cut.output_node);
  for (double x : {0.1, 0.3, 0.4}) {
    auto once = faults::inject(cut.circuit,
                               {faults::FaultSite::value_of("R2"), x});
    auto back = faults::inject(
        once, {faults::FaultSite::value_of("R2"), -x / (1.0 + x)});
    const auto response = mna::AcAnalysis(back).sweep(freqs, cut.output_node);
    EXPECT_LT(response.max_deviation(golden), 1e-9);
  }
}

/// Dictionary determinism: building twice gives identical responses.
TEST(FaultProperty, DictionaryBuildIsDeterministic) {
  const auto cut = circuits::make_paper_cut();
  const std::vector<double> freqs = {100.0, 1000.0, 10000.0};
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const auto a = faults::FaultDictionary::build(cut, universe, freqs);
  const auto b = faults::FaultDictionary::build(cut, universe, freqs);
  ASSERT_EQ(a.fault_count(), b.fault_count());
  for (std::size_t i = 0; i < a.fault_count(); ++i) {
    EXPECT_NEAR(a.entries()[i].response.max_deviation(b.entries()[i].response),
                0.0, 0.0)
        << a.entries()[i].fault.label();
  }
}

/// Deviation-estimate consistency: for on-trajectory points the estimator
/// must recover the injected deviation across the whole grid.
TEST(DiagnosisProperty, DeviationEstimatorConsistentOnGrid) {
  const auto cut = circuits::make_paper_cut();
  const auto dict = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_testable(cut));
  const core::TestVectorEvaluator evaluator(dict);
  const core::TestVector tv{{700.0, 1600.0}};
  const auto engine = evaluator.make_engine(tv);
  for (const auto& entry : dict.entries()) {
    const auto observed =
        evaluator.sampler().sample(entry.response, tv.frequencies_hz);
    const auto diagnosis = engine.diagnose(observed);
    if (diagnosis.best().site == entry.fault.site.label()) {
      EXPECT_NEAR(diagnosis.best().estimated_deviation, entry.fault.deviation,
                  0.02)
          << entry.fault.label();
    }
  }
}

}  // namespace
}  // namespace ftdiag
