#include "ga/operators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace ftdiag::ga {
namespace {

std::vector<Candidate> make_population() {
  std::vector<Candidate> pop;
  pop.push_back({{1.0}, 0.1});
  pop.push_back({{2.0}, 0.3});
  pop.push_back({{3.0}, 0.6});
  return pop;
}

TEST(Roulette, SelectsProportionallyToFitness) {
  Rng rng(1);
  const auto pop = make_population();
  std::vector<int> histogram(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++histogram[select_parent(pop, SelectionKind::kRoulette, rng)];
  }
  EXPECT_NEAR(histogram[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(histogram[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(histogram[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Tournament, FavorsTheBest) {
  Rng rng(2);
  const auto pop = make_population();
  int best_wins = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (select_parent(pop, SelectionKind::kTournament, rng, 3) == 2) {
      ++best_wins;
    }
  }
  // P(best in 3 draws with replacement) = 1 - (2/3)^3 ~ 0.704.
  EXPECT_NEAR(best_wins / static_cast<double>(n), 0.704, 0.02);
}

TEST(RankSelection, OrdersByRankNotMagnitude) {
  Rng rng(3);
  // Huge fitness gap: rank selection must NOT behave like roulette.
  std::vector<Candidate> pop;
  pop.push_back({{1.0}, 1e-9});
  pop.push_back({{2.0}, 1.0});
  std::vector<int> histogram(2, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++histogram[select_parent(pop, SelectionKind::kRank, rng)];
  }
  // Rank weights 1:2 -> 1/3 vs 2/3.
  EXPECT_NEAR(histogram[0] / static_cast<double>(n), 1.0 / 3.0, 0.02);
}

TEST(Crossover, ArithmeticStaysWithinParentSpan) {
  Rng rng(4);
  const std::vector<double> a = {0.0, 10.0};
  const std::vector<double> b = {1.0, 20.0};
  for (int i = 0; i < 200; ++i) {
    const auto child = crossover(a, b, CrossoverKind::kArithmetic, rng);
    EXPECT_GE(child[0], 0.0);
    EXPECT_LE(child[0], 1.0);
    EXPECT_GE(child[1], 10.0);
    EXPECT_LE(child[1], 20.0);
    // Same blend weight for every gene (whole-arithmetic crossover):
    // child = w*a + (1-w)*b  =>  child[1] = 10 + 10*child[0].
    EXPECT_NEAR(child[1], 10.0 + 10.0 * child[0], 1e-9);
  }
}

TEST(Crossover, UniformPicksParentGenes) {
  Rng rng(5);
  const std::vector<double> a = {1.0, 1.0, 1.0};
  const std::vector<double> b = {2.0, 2.0, 2.0};
  bool saw_mix = false;
  for (int i = 0; i < 100; ++i) {
    const auto child = crossover(a, b, CrossoverKind::kUniform, rng);
    for (double g : child) EXPECT_TRUE(g == 1.0 || g == 2.0);
    if (std::count(child.begin(), child.end(), 1.0) % 3 != 0) saw_mix = true;
  }
  EXPECT_TRUE(saw_mix);
}

TEST(Crossover, BlendCanExplodeBeyondParents) {
  Rng rng(6);
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {1.0};
  bool outside = false;
  for (int i = 0; i < 500; ++i) {
    const auto child = crossover(a, b, CrossoverKind::kBlend, rng, 0.5);
    EXPECT_GE(child[0], -0.5);
    EXPECT_LE(child[0], 1.5);
    if (child[0] < 0.0 || child[0] > 1.0) outside = true;
  }
  EXPECT_TRUE(outside);  // extension region actually used
}

TEST(Mutate, RateZeroLeavesGenesAlone) {
  Rng rng(7);
  std::vector<double> genes = {1.0, 2.0};
  mutate(genes, MutationKind::kGaussian, 0.0, 0.5, {0.0, 5.0}, rng);
  EXPECT_DOUBLE_EQ(genes[0], 1.0);
  EXPECT_DOUBLE_EQ(genes[1], 2.0);
}

TEST(Mutate, RateOneChangesEveryGene) {
  Rng rng(8);
  std::vector<double> genes = {1.0, 2.0, 3.0};
  const auto original = genes;
  mutate(genes, MutationKind::kGaussian, 1.0, 0.5, {0.0, 5.0}, rng);
  for (std::size_t i = 0; i < genes.size(); ++i) {
    EXPECT_NE(genes[i], original[i]);
  }
}

TEST(Mutate, RespectsBounds) {
  Rng rng(9);
  const GeneBounds bounds{0.0, 1.0};
  for (int i = 0; i < 500; ++i) {
    std::vector<double> genes = {0.5};
    mutate(genes, MutationKind::kGaussian, 1.0, 10.0, bounds, rng);
    EXPECT_GE(genes[0], 0.0);
    EXPECT_LE(genes[0], 1.0);
  }
}

TEST(Mutate, UniformResetCoversTheBox) {
  Rng rng(10);
  const GeneBounds bounds{2.0, 4.0};
  double min_seen = 1e300, max_seen = -1e300;
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> genes = {3.0};
    mutate(genes, MutationKind::kUniformReset, 1.0, 0.0, bounds, rng);
    min_seen = std::min(min_seen, genes[0]);
    max_seen = std::max(max_seen, genes[0]);
  }
  EXPECT_LT(min_seen, 2.1);
  EXPECT_GT(max_seen, 3.9);
}

TEST(GeneBounds, ClampAndSpan) {
  const GeneBounds bounds{1.0, 5.0};
  EXPECT_DOUBLE_EQ(bounds.clamp(0.0), 1.0);
  EXPECT_DOUBLE_EQ(bounds.clamp(9.0), 5.0);
  EXPECT_DOUBLE_EQ(bounds.clamp(3.0), 3.0);
  EXPECT_DOUBLE_EQ(bounds.span(), 4.0);
}

}  // namespace
}  // namespace ftdiag::ga
