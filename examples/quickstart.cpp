/// Quickstart: the whole paper flow in ~20 lines of user code.
///
///   1. open a Session on the paper's biquad CUT (the parametric-fault
///      dictionary is built lazily and shared process-wide),
///   2. let the GA pick the two test frequencies whose fault trajectories
///      do not intersect,
///   3. diagnose an unknown fault from a two-point "measurement".
#include <cstdio>
#include <iostream>

#include "ftdiag.hpp"

int main() {
  using namespace ftdiag;

  // 1: the Session facade composes dictionary -> search -> diagnosis.
  Session session = Session::open("builtin:nf_biquad");
  std::printf("CUT: %s\nfault dictionary: %zu faulty circuits\n\n",
              session.cut().description.c_str(),
              session.dictionary()->fault_count());

  // 2: GA with the paper's parameters (128 x 15, roulette, 1/(1+I)).
  const TestGenResult result = session.generate_tests();
  std::printf("optimized test vector: %s  (fitness %.3f, %zu intersections)\n\n",
              result.best.vector.label().c_str(), result.best.fitness,
              result.best.intersections);

  // 3: someone breaks R3 by +23% without telling us...
  const faults::ParametricFault hidden{faults::FaultSite::value_of("R3"), 0.23};

  // ...and the trajectory classifier names the culprit from a two-tone
  // measurement of the faulty board at the optimized frequencies.
  io::print_diagnosis(std::cout, session.diagnose(session.measure(hidden)));
  return 0;
}
