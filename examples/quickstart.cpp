/// Quickstart: the whole paper flow in ~30 lines of user code.
///
///   1. take the paper's biquad CUT,
///   2. build the parametric-fault dictionary,
///   3. let the GA pick the two test frequencies whose fault trajectories
///      do not intersect,
///   4. diagnose an unknown fault from a two-point "measurement".
#include <cstdio>
#include <iostream>

#include "circuits/nf_biquad.hpp"
#include "core/atpg.hpp"
#include "faults/fault_injector.hpp"
#include "io/report.hpp"
#include "mna/ac_analysis.hpp"

int main() {
  using namespace ftdiag;

  // 1 + 2: CUT and dictionary (AtpgFlow builds the dictionary eagerly).
  const auto cut = circuits::make_paper_cut();
  core::AtpgFlow flow(cut);
  std::printf("CUT: %s\nfault dictionary: %zu faulty circuits\n\n",
              cut.description.c_str(), flow.dictionary().fault_count());

  // 3: GA with the paper's parameters (128 x 15, roulette, 1/(1+I)).
  const core::AtpgResult result = flow.run();
  std::printf("optimized test vector: %s  (fitness %.3f, %zu intersections)\n\n",
              result.best.vector.label().c_str(), result.best.fitness,
              result.best.intersections);

  // 4: someone breaks R3 by +23% without telling us...
  const faults::ParametricFault hidden{faults::FaultSite::value_of("R3"), 0.23};
  mna::AcAnalysis bench(faults::inject(cut.circuit, hidden));
  const auto measured =
      bench.sweep(result.best.vector.frequencies_hz, cut.output_node);

  // ...and the trajectory classifier names the culprit.
  const auto engine = flow.evaluator().make_engine(result.best.vector);
  const auto observed = flow.evaluator().sampler().sample(
      measured, result.best.vector.frequencies_hz);
  io::print_diagnosis(std::cout, engine.diagnose(observed));
  return 0;
}
