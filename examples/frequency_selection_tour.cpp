/// A guided tour of *why* test-frequency choice matters: scores a range of
/// hand-picked frequency pairs against the GA's choice, showing fitness,
/// intersection counts and separation margins side by side — the intuition
/// behind the paper's Fig. 2/3.
#include <cstdio>
#include <iostream>

#include "ftdiag.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace ftdiag;

  Session session = Session::open("builtin:nf_biquad");

  struct Pick {
    const char* intuition;
    double f1, f2;
  };
  const Pick picks[] = {
      {"both deep in the passband (responses barely differ)", 15.0, 40.0},
      {"both deep in the stopband (tiny absolute signals)", 50e3, 90e3},
      {"nearly identical frequencies (collinear sampling)", 900.0, 905.0},
      {"passband + transition band", 200.0, 1200.0},
      {"straddling the corner frequency", 700.0, 1600.0},
      {"transition + stopband", 1500.0, 6000.0},
  };

  AsciiTable table({"pick", "f1", "f2", "fitness", "I", "sep margin"});
  for (const auto& pick : picks) {
    const auto score = session.score({{pick.f1, pick.f2}});
    table.add_row({pick.intuition, units::format_hz(pick.f1),
                   units::format_hz(pick.f2),
                   str::format("%.4f", score.fitness),
                   std::to_string(score.intersections),
                   str::format("%.5f", score.separation_margin)});
  }

  // And what the two optimizers actually choose.  Both sessions describe
  // the same CUT, so the hybrid one reuses the cached dictionary for free.
  const auto ga_score = session.generate_tests().best;
  table.add_row({"GA, paper fitness (zero crossings)",
                 units::format_hz(ga_score.vector.frequencies_hz[0]),
                 units::format_hz(ga_score.vector.frequencies_hz[1]),
                 str::format("%.4f", ga_score.fitness),
                 std::to_string(ga_score.intersections),
                 str::format("%.5f", ga_score.separation_margin)});

  Session hybrid = SessionBuilder::from_registry("nf_biquad")
                       .fitness(FitnessKind::kHybrid)
                       .build();
  const auto hybrid_score = hybrid.generate_tests().best;
  table.add_row({"GA, hybrid fitness (crossings + separation)",
                 units::format_hz(hybrid_score.vector.frequencies_hz[0]),
                 units::format_hz(hybrid_score.vector.frequencies_hz[1]),
                 str::format("%.4f",
                             session.score(hybrid_score.vector).fitness),
                 std::to_string(hybrid_score.intersections),
                 str::format("%.5f", hybrid_score.separation_margin)});

  table.print(std::cout, "frequency-pair quality on the paper CUT");

  std::printf(
      "\nhow to read this: a pair is good when the seven component\n"
      "trajectories it induces neither cross (I = 0 -> fitness 1) nor\n"
      "crowd together (large separation margin).  Pairs inside one flat\n"
      "band sample redundant information and collapse the trajectories.\n");
  return 0;
}
