/// Driving the flow from a SPICE-style netlist instead of the built-in
/// circuit registry: parse, validate, describe, pick the test-access
/// points, and run ATPG + diagnosis through a Session built on the result.
#include <cstdio>
#include <iostream>

#include "ftdiag.hpp"
#include "mna/transfer_function.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

/// A user-supplied board: Sallen-Key low-pass behind an RC pre-filter,
/// with a macro-model op-amp (not the idealized registry version).
constexpr const char* kNetlist = R"(
user board: rc pre-filter + sallen-key low-pass
V1 in 0 AC 1
Rpre in  a   1k
Cpre a   0   47n
R1   a   b   10k
R2   b   c   10k
C1   b   out 4.5n
C2   c   0   2.2n
XOA  c   out out OPAMP AD0=2e5 GBW=1meg ROUT=75
.end
)";

}  // namespace

int main() {
  using namespace ftdiag;

  // Parse and validate.
  netlist::Circuit circuit = netlist::parse_netlist(kNetlist);
  circuit.validate_or_throw();
  std::printf("parsed '%s': %zu components, %zu nodes\n\n",
              circuit.title().c_str(), circuit.component_count(),
              circuit.node_count());
  for (const auto& component : circuit.components()) {
    std::printf("  %s\n", component.describe().c_str());
  }

  // Quick characterization before testing.
  mna::AcAnalysis ac(circuit);
  const auto response =
      ac.sweep(mna::FrequencyGrid::log_sweep(10.0, 1e6, 240), "out");
  const auto lp = mna::measure_lowpass(response);
  std::printf("\nmeasured: dc gain %.3f, f_3dB %s\n", lp.dc_gain,
              units::format_hz(lp.f_3db_hz).c_str());

  // Wrap as a CUT: which parts are testable, where we drive and observe.
  circuits::CircuitUnderTest cut;
  cut.name = "user_board";
  cut.description = "netlist-defined RC + Sallen-Key board";
  cut.circuit = std::move(circuit);
  cut.input_source = "V1";
  cut.output_node = "out";
  cut.testable = {"Rpre", "Cpre", "R1", "R2", "C1", "C2"};
  cut.dictionary_grid = mna::FrequencyGrid::log_sweep(10.0, 1e6, 240);
  cut.band_low_hz = 10.0;
  cut.band_high_hz = 1e6;

  // ATPG with a separation-aware objective, through the facade.
  Session session = SessionBuilder(std::move(cut))
                        .fitness(FitnessKind::kHybrid)
                        .build();
  const auto result = session.generate_tests();
  io::print_atpg_report(std::cout, result);

  // The op-amp is a macro model, so its parameters are faultable too:
  // list what an FFM-style active-fault dictionary would cover.
  const auto active = faults::FaultUniverse::over_opamp_params(session.cut());
  std::printf("\nactive-fault sites available (FFM macro parameters):\n");
  for (const auto& site : active.sites()) {
    std::printf("  %s\n", site.label().c_str());
  }
  return 0;
}
