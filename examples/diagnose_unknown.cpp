/// Diagnosing a batch of unknown faults, with confidence and ambiguity
/// reporting — the workflow of an incoming-inspection bench.
///
/// Twenty random single faults (random site, random off-grid deviation)
/// are injected; each is "measured" at the optimized test frequencies with
/// a touch of instrument noise and pushed through the diagnosis engine.
#include <cstdio>
#include <iostream>

#include "circuits/nf_biquad.hpp"
#include "core/atpg.hpp"
#include "faults/fault_simulator.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftdiag;

  const auto cut = circuits::make_paper_cut();
  core::AtpgConfig config;
  config.fitness = "hybrid";  // separation-aware: robust under noise
  core::AtpgFlow flow(cut, config);
  const auto result = flow.run();
  std::printf("test vector: %s\n\n", result.best.vector.label().c_str());

  const auto engine = flow.evaluator().make_engine(result.best.vector);
  const faults::FaultSimulator simulator(cut);

  Rng rng(2024);
  AsciiTable table({"#", "injected", "diagnosed", "est. dev", "confidence",
                    "ambiguity set", "verdict"});
  std::size_t correct = 0;
  constexpr std::size_t kBoards = 20;
  for (std::size_t board = 1; board <= kBoards; ++board) {
    const auto& site =
        cut.testable[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cut.testable.size()) - 1))];
    const double magnitude = rng.uniform(0.08, 0.40);
    const faults::ParametricFault fault{
        faults::FaultSite::value_of(site),
        rng.bernoulli(0.5) ? magnitude : -magnitude};

    const auto measured = simulator.measure(
        fault, result.best.vector.frequencies_hz, {0.002, rng()});
    const auto observed = flow.evaluator().sampler().sample(
        measured, result.best.vector.frequencies_hz);
    const auto diagnosis = engine.diagnose(observed);

    const bool hit = diagnosis.best().site == site;
    correct += hit ? 1 : 0;
    table.add_row({std::to_string(board), fault.label(),
                   diagnosis.best().site,
                   str::format("%+.0f%%",
                               diagnosis.best().estimated_deviation * 100),
                   str::format("%.2f", diagnosis.confidence()),
                   str::join(diagnosis.ambiguity_set(), ","),
                   hit ? "ok" : "MISS"});
  }
  table.print(std::cout, "incoming-inspection batch (0.2% magnitude noise)");
  std::printf("\ncorrectly located: %zu / %zu\n", correct, kBoards);
  return 0;
}
