/// Diagnosing a batch of unknown faults, with confidence and ambiguity
/// reporting — the workflow of an incoming-inspection bench.
///
/// Twenty random single faults (random site, random off-grid deviation)
/// are injected; each is "measured" at the optimized test frequencies with
/// a touch of instrument noise and pushed through the session's batch
/// diagnosis verb.
#include <cstdio>
#include <iostream>

#include "ftdiag.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftdiag;

  Session session = SessionBuilder::from_registry("nf_biquad")
                        .fitness(FitnessKind::kHybrid)  // robust under noise
                        .noise({0.002, 2024})           // 0.2% instrument noise
                        .build();
  const auto result = session.generate_tests();
  std::printf("test vector: %s\n\n", result.best.vector.label().c_str());

  Rng rng(2024);
  constexpr std::size_t kBoards = 20;
  const auto& testable = session.cut().testable;

  // Inject + "measure" all boards first, then diagnose them in one batch —
  // the const batch path a concurrent inspection server would use.
  std::vector<faults::ParametricFault> injected;
  std::vector<core::Point> observed;
  for (std::size_t board = 0; board < kBoards; ++board) {
    const auto& site = testable[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(testable.size()) - 1))];
    const double magnitude = rng.uniform(0.08, 0.40);
    injected.push_back({faults::FaultSite::value_of(site),
                        rng.bernoulli(0.5) ? magnitude : -magnitude});
    observed.push_back(session.observe(session.measure(injected.back(), rng())));
  }
  const std::vector<core::Diagnosis> diagnoses =
      session.diagnose_batch(observed);

  AsciiTable table({"#", "injected", "diagnosed", "est. dev", "confidence",
                    "ambiguity set", "verdict"});
  std::size_t correct = 0;
  for (std::size_t board = 0; board < kBoards; ++board) {
    const auto& diagnosis = diagnoses[board];
    const bool hit = diagnosis.best().site == injected[board].site.label();
    correct += hit ? 1 : 0;
    table.add_row({std::to_string(board + 1), injected[board].label(),
                   diagnosis.best().site,
                   str::format("%+.0f%%",
                               diagnosis.best().estimated_deviation * 100),
                   str::format("%.2f", diagnosis.confidence()),
                   str::join(diagnosis.ambiguity_set(), ","),
                   hit ? "ok" : "MISS"});
  }
  table.print(std::cout, "incoming-inspection batch (0.2% magnitude noise)");
  std::printf("\ncorrectly located: %zu / %zu\n", correct, kBoards);
  return 0;
}
