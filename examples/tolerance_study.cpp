/// How robust is trajectory diagnosis on real, toleranced hardware?
///
/// The dictionary assumes nominal healthy components; production boards
/// have 1 %-resistors and 5 %-capacitors.  This study sweeps tolerance
/// classes and measurement noise jointly and prints the accuracy surface —
/// the practical deployment envelope of the method.
#include <cstdio>
#include <iostream>

#include "ftdiag.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace ftdiag;

  Session session = SessionBuilder::from_registry("nf_biquad")
                        .fitness(FitnessKind::kHybrid)
                        .build();
  const auto vector = session.generate_tests().best.vector;
  std::printf("test vector: %s\n\n", vector.label().c_str());

  const double tolerances[] = {0.0, 0.005, 0.01, 0.02, 0.05};
  const double noises[] = {0.0, 0.002, 0.01};

  AsciiTable surface([&] {
    std::vector<std::string> header = {"R/C tolerance \\ noise"};
    for (double n : noises) header.push_back(str::format("%.1f%%", n * 100));
    return header;
  }());

  for (double tol : tolerances) {
    std::vector<std::string> row = {str::format("%.1f%%", tol * 100)};
    for (double noise : noises) {
      core::EvaluationOptions options;
      options.trials = 300;
      options.noise_sigma = noise;
      if (tol > 0.0) {
        faults::ToleranceSpec spec;
        spec.resistor_tolerance = tol;
        spec.capacitor_tolerance = tol;
        options.tolerance = spec;
      }
      const auto report = session.evaluate(options);
      row.push_back(str::format("%.1f%%", report.site_accuracy * 100));
    }
    surface.add_row(std::move(row));
  }
  surface.print(std::cout, "site accuracy: tolerance x noise");

  // One detailed report at the realistic corner (1% R, 1% C, 0.2% noise).
  core::EvaluationOptions realistic;
  realistic.trials = 400;
  realistic.noise_sigma = 0.002;
  faults::ToleranceSpec spec;
  spec.resistor_tolerance = 0.01;
  spec.capacitor_tolerance = 0.01;
  realistic.tolerance = spec;
  const auto report = session.evaluate(realistic);
  std::printf("\ndetailed report at the 1%%-parts / 0.2%%-noise corner:\n\n");
  io::print_accuracy_report(std::cout, report);

  std::printf(
      "\ntakeaway: with 1%% parts the fault must exceed the tolerance\n"
      "cloud to be attributable — consistent with the paper's implicit\n"
      "assumption of deviations well beyond process spread.\n");
  return 0;
}
