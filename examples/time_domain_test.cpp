/// Closing the loop to a physical measurement: the optimized test vector
/// is applied as an actual two-tone *time-domain* stimulus through the
/// transient engine; the output waveform is "captured" and the per-tone
/// amplitudes recovered with Goertzel correlation.  Diagnosis then runs on
/// those time-domain measurements — exactly what a bench implementation of
/// the paper's method would do.
#include <cstdio>
#include <iostream>

#include "ftdiag.hpp"
#include "mna/tone_extraction.hpp"
#include "mna/transient.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace ftdiag;

  Session session = SessionBuilder::from_registry("nf_biquad")
                        .fitness(FitnessKind::kHybrid)
                        .build();
  core::TestVector vector = session.generate_tests().best.vector;

  // Coherent sampling, as a bench instrument would do it: snap both test
  // tones onto the grid df = 1/T_window so the Goertzel window holds a
  // whole number of periods of BOTH tones and inter-tone leakage vanishes.
  const double record_s = 24.0 / vector.frequencies_hz[0];
  const double df = 2.0 / record_s;  // analysis tail = half the record
  for (double& f : vector.frequencies_hz) {
    f = std::max(1.0, std::round(f / df)) * df;
  }
  vector.normalize();
  const double f1 = vector.frequencies_hz[0];
  const double f2 = vector.frequencies_hz[1];
  std::printf(
      "test vector: %s  -> applied as a two-tone stimulus\n"
      "(tones snapped to the %.2f Hz coherent-sampling grid)\n\n",
      vector.label().c_str(), df);

  // Re-arm the session on the snapped vector: diagnosis now runs against
  // the trajectories these exact frequencies induce.
  session.use_vector(vector);
  const auto& cut = session.cut();

  // Transient setup: long enough for steady state, sampled well above f2,
  // with dt an exact divisor of the record so windows align.
  mna::TransientSpec spec;
  // record_s * f2 is an integer by construction (f2 is on the df grid),
  // so 96 samples per f2 period gives an integer sample count per record.
  const std::size_t steps_total =
      static_cast<std::size_t>(std::llround(record_s * f2)) * 96;
  spec.dt = record_s / static_cast<double>(steps_total);
  spec.t_stop = record_s;
  spec.waveforms["vin"] = mna::SourceWaveform::tone_set({f1, f2});

  AsciiTable table({"board", "tone", "AC |H|", "transient |H|", "error"});
  std::size_t correct = 0;
  const faults::ParametricFault faults_to_try[] = {
      {faults::FaultSite::value_of("R2"), 0.27},
      {faults::FaultSite::value_of("C1"), -0.33},
      {faults::FaultSite::value_of("Ra"), 0.15},
  };
  for (const auto& fault : faults_to_try) {
    const auto board = faults::inject(cut.circuit, fault);

    // Time-domain "measurement".
    mna::TransientAnalysis transient(board);
    const auto record = transient.run(spec, {cut.output_node});
    const auto tones = mna::extract_tones(
        record.time_s, record.node(cut.output_node), {f1, f2});

    // Reference: AC analysis of the same board.
    mna::AcAnalysis ac(board);
    const auto reference = ac.sweep(vector.frequencies_hz, cut.output_node);

    for (std::size_t i = 0; i < tones.size(); ++i) {
      const double h_tran = tones[i].amplitude();  // unit-amplitude stimulus
      const double h_ac = reference.magnitude(i);
      table.add_row({fault.label(), units::format_hz(tones[i].frequency_hz),
                     str::format("%.5f", h_ac), str::format("%.5f", h_tran),
                     str::format("%.2e", std::fabs(h_tran - h_ac))});
    }

    // Diagnose from the TRANSIENT measurement only.
    const mna::AcResponse measured(
        vector.frequencies_hz,
        {mna::Complex(tones[0].phasor), mna::Complex(tones[1].phasor)});
    const auto diagnosis = session.diagnose(measured);
    std::printf("injected %-8s -> diagnosed %-3s (est %+.0f%%, conf %.2f)\n",
                fault.label().c_str(), diagnosis.best().site.c_str(),
                diagnosis.best().estimated_deviation * 100,
                diagnosis.confidence());
    correct += diagnosis.best().site == fault.site.label() ? 1 : 0;
  }
  std::printf("\n");
  table.print(std::cout, "AC analysis vs time-domain tone extraction");
  std::printf("\ncorrect diagnoses from time-domain data: %zu / 3\n", correct);
  return 0;
}
