/// Ext-G: fault detection ("it must disclose faults", paper §2).
///
/// The acceptance radius is calibrated on Monte-Carlo healthy boards
/// (toleranced parts + measurement noise); fault coverage and realized
/// false-alarm rate are then measured per site, per tolerance class and
/// per fault magnitude.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/detection.hpp"
#include "ftdiag.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

int main() {
  bench::banner("Ext-G", "fault detection: coverage vs tolerance-calibrated "
                         "acceptance radius",
                "nf_biquad CUT, hybrid-fitness test vector, 60 faults/site");

  Session session = SessionBuilder::from_registry("nf_biquad")
                        .fitness(FitnessKind::kHybrid)
                        .build();
  const auto vector = session.generate_tests().best.vector;
  std::printf("test vector: %s\n", vector.label().c_str());
  const auto dictionary = session.dictionary();
  const core::SamplingPolicy sampling = session.options().sampling;

  // --- coverage vs tolerance class --------------------------------------
  AsciiTable by_tolerance({"R/C tolerance", "threshold", "coverage",
                           "false alarms", "min site coverage"});
  for (double tol : {0.002, 0.01, 0.02, 0.05}) {
    core::DetectionCalibration calibration;
    calibration.tolerance.resistor_tolerance = tol;
    calibration.tolerance.capacitor_tolerance = tol;
    calibration.noise_sigma = 0.002;
    const auto detector = core::FaultDetector::calibrate(
        session.cut(), *dictionary, vector, sampling, calibration);
    const auto report = core::measure_coverage(
        session.cut(), *dictionary, vector, sampling, detector, calibration);
    double min_site = 1.0;
    for (const auto& s : report.per_site) min_site = std::min(min_site, s.rate());
    by_tolerance.add_row({str::format("%.1f%%", tol * 100),
                          str::format("%.3e", detector.threshold()),
                          str::format("%.1f%%", report.overall_coverage * 100),
                          str::format("%.1f%%", report.false_alarm_rate * 100),
                          str::format("%.1f%%", min_site * 100)});
  }
  by_tolerance.print(std::cout, "coverage vs healthy-part tolerance "
                                "(|deviation| 5-40%, 0.2% noise)");

  // --- per-site coverage at the realistic corner ------------------------
  core::DetectionCalibration calibration;
  calibration.tolerance.resistor_tolerance = 0.01;
  calibration.tolerance.capacitor_tolerance = 0.01;
  calibration.noise_sigma = 0.002;
  const auto detector = core::FaultDetector::calibrate(
      session.cut(), *dictionary, vector, sampling, calibration);

  AsciiTable per_site({"site", "coverage (5-40%)", "coverage (15-40%)"});
  core::CoverageOptions wide;
  core::CoverageOptions large_only;
  large_only.min_abs_deviation = 0.15;
  const auto wide_report = core::measure_coverage(
      session.cut(), *dictionary, vector, sampling, detector, calibration,
      wide);
  const auto large_report = core::measure_coverage(
      session.cut(), *dictionary, vector, sampling, detector, calibration,
      large_only);
  for (std::size_t i = 0; i < wide_report.per_site.size(); ++i) {
    per_site.add_row({wide_report.per_site[i].site,
                      str::format("%.1f%%", wide_report.per_site[i].rate() * 100),
                      str::format("%.1f%%", large_report.per_site[i].rate() * 100)});
  }
  per_site.print(std::cout, "per-site coverage at 1% parts");

  std::printf(
      "\nreading: faults below the tolerance cloud are physically\n"
      "indistinguishable from healthy spread (coverage < 100%% for small\n"
      "deviations at loose tolerances); beyond ~3x the part tolerance the\n"
      "test vector discloses essentially every parametric fault.\n");
  return 0;
}
