/// Ext-F: FFM active faults (paper §2.1: "faults on active devices will be
/// represented as % deviation on the values of their macro model").
///
/// The CUT is rebuilt with single-pole op-amp macro models; the fault
/// universe covers every macro parameter (Ad0, GBW, Rin, Rout) alongside
/// the seven passives, and the full flow runs on the combined dictionary.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuits/nf_biquad.hpp"
#include "core/ambiguity.hpp"
#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

int main() {
  bench::banner("Ext-F", "FFM active faults: op-amp macro-model parameter "
                         "deviations as dictionary entries",
                "nf_biquad with macro op-amp (Ad0=2e5, GBW=1MHz)");

  circuits::NfBiquadDesign design;
  design.ideal_opamps = false;
  auto cut = circuits::make_nf_biquad(design);

  // Combined universe: the 7 passives + the 4 op-amp macro parameters.
  auto universe = faults::FaultUniverse::over_testable(cut);
  const auto active = faults::FaultUniverse::over_opamp_params(cut);
  std::vector<faults::FaultSite> sites = universe.sites();
  sites.insert(sites.end(), active.sites().begin(), active.sites().end());
  const faults::FaultUniverse combined(sites, faults::DeviationSpec::paper());

  const auto dict = faults::FaultDictionary::build(cut, combined);
  std::printf("combined dictionary: %zu sites, %zu faults\n\n",
              dict.site_labels().size(), dict.fault_count());

  // Detectability: how much does each site move the response at all?
  AsciiTable detect({"site", "max |dH| over sweep (+40%)", "detectable"});
  for (const auto& site : dict.site_labels()) {
    const auto& indices = dict.entries_for(site);
    const double moved =
        dict.entries()[indices.back()].response.max_deviation(dict.golden());
    detect.add_row({site, str::format("%.2e", moved),
                    moved > 1e-4 ? "yes" : "marginal"});
  }
  detect.print(std::cout, "per-site detectability");

  const auto groups = core::find_ambiguity_groups(dict);
  std::printf("\nambiguity groups (%zu):", groups.size());
  for (const auto& g : groups) std::printf(" [%s]", g.label().c_str());
  std::printf("\n");

  // Frequency search and evaluation over the combined universe.
  const core::TestVectorEvaluator evaluator(dict);
  core::TestVector best{{700.0, 1600.0}};
  double best_fitness = evaluator.fitness(best);
  // Small grid refinement over the band for the combined dictionary.
  for (double f1 = 1.5; f1 <= 4.5; f1 += 0.25) {
    for (double f2 = f1 + 0.25; f2 <= 5.0; f2 += 0.25) {
      core::TestVector tv{{std::pow(10.0, f1), std::pow(10.0, f2)}};
      const double fitness = evaluator.fitness(tv);
      if (fitness > best_fitness) {
        best_fitness = fitness;
        best = tv;
      }
    }
  }
  const auto score = evaluator.score(best);
  std::printf("\nbest vector found: %s (fitness %.4f, I=%zu)\n",
              best.label().c_str(), score.fitness, score.intersections);

  core::EvaluationOptions options;
  options.trials = 400;
  const auto report = core::evaluate_diagnosis(cut, dict, best,
                                               core::SamplingPolicy{}, options);
  std::printf(
      "\ndiagnosis over passive+active unknown faults:\n"
      "  site accuracy  %.1f%%\n  group accuracy %.1f%%\n  top-2          %.1f%%\n",
      report.site_accuracy * 100, report.group_accuracy * 100,
      report.top2_accuracy * 100);

  std::printf(
      "\nreading: in a closed negative-feedback loop Ad0/Rin/Rout barely\n"
      "move the response (feedback hides them) and may fold into one\n"
      "ambiguity group, while GBW faults displace the pole and are\n"
      "diagnosable — matching the FFM observation that only some macro\n"
      "parameters are testable from the filter response.\n");
  return 0;
}
