/// Ext-E: multi-test-point extension.
///
/// The Tow-Thomas CUT is structurally ambiguous from its LP output alone
/// ({R4,R6} enter H only via k/R6; {R3,C2} only via R3*C2).  Observing a
/// second node whose transfer depends on the ratio k = R5/R4 directly
/// (the inverter output) splits {R4,R6}; {R3,C2} remains merged at every
/// voltage node — a genuine, detector-confirmed limit.  This bench
/// quantifies groups and accuracy per observation set.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuits/tow_thomas.hpp"
#include "core/multipoint.hpp"
#include "faults/fault_injector.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

namespace {

struct Outcome {
  std::size_t groups = 0;
  std::string group_labels;
  double site_accuracy = 0.0;
  double group_accuracy = 0.0;
};

Outcome run(const circuits::CircuitUnderTest& cut,
            const std::vector<std::string>& nodes,
            const core::TestVector& vector) {
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const core::MultiPointEvaluator evaluator(cut, universe, nodes);
  const auto groups = evaluator.ambiguity_groups();
  const auto engine = evaluator.make_engine(vector);

  Outcome outcome;
  outcome.groups = groups.size();
  for (const auto& g : groups) {
    outcome.group_labels += str::format("[%s]", g.label().c_str());
  }

  Rng rng(7);
  constexpr std::size_t kTrials = 300;
  std::size_t site_hits = 0, group_hits = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const auto& site =
        cut.testable[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cut.testable.size()) - 1))];
    const double magnitude = rng.uniform(0.05, 0.40);
    const faults::ParametricFault fault{
        faults::FaultSite::value_of(site),
        rng.bernoulli(0.5) ? magnitude : -magnitude};
    const auto board = faults::inject(cut.circuit, fault);
    const auto observed = evaluator.observe(board, vector);
    const auto diagnosis = engine.diagnose(observed);
    site_hits += diagnosis.best().site == site ? 1 : 0;
    group_hits +=
        core::same_group(groups, diagnosis.best().site, site) ? 1 : 0;
  }
  outcome.site_accuracy = static_cast<double>(site_hits) / kTrials;
  outcome.group_accuracy = static_cast<double>(group_hits) / kTrials;
  return outcome;
}

}  // namespace

int main() {
  bench::banner("Ext-E", "multi-test-point extension on the Tow-Thomas CUT",
                "signature space R^(nodes x freqs), 300 unknown faults each");

  const auto cut = circuits::make_tow_thomas();
  const core::TestVector vector{{700.0, 1600.0}};

  AsciiTable table({"observed nodes", "dim", "groups", "partition",
                    "site acc", "group acc"});
  const std::vector<std::vector<std::string>> observation_sets = {
      {"lp"}, {"lp", "bp"}, {"lp", "inv"}, {"lp", "bp", "inv"}};
  for (const auto& nodes : observation_sets) {
    const auto outcome = run(cut, nodes, vector);
    table.add_row({str::join(nodes, "+"),
                   std::to_string(nodes.size() * 2),
                   std::to_string(outcome.groups), outcome.group_labels,
                   str::format("%.1f%%", outcome.site_accuracy * 100),
                   str::format("%.1f%%", outcome.group_accuracy * 100)});
  }
  table.print(std::cout, "observation sets vs diagnosability");

  std::printf(
      "\nreading: adding the inverter output (which sees k = R5/R4\n"
      "directly) splits the {R4,R6} group and lifts exact-site accuracy;\n"
      "{R3,C2} stays merged at every node because only their product\n"
      "enters any node voltage — a structural limit, not a method one.\n");
  return 0;
}
