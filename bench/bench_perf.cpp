/// Perf: google-benchmark microbenchmarks of every pipeline stage —
/// MNA solves (dense + sparse), fault-dictionary construction (serial and
/// engine), trajectory building, intersection counting, fitness evaluation
/// and diagnosis.  After the registered benchmarks run, main() times the
/// serial vs engine dictionary build on the largest registry circuit and
/// writes the comparison to BENCH_engine.json so the perf trajectory of
/// the simulation engine is tracked per PR.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuits/ladders.hpp"
#include "circuits/nf_biquad.hpp"
#include "circuits/registry.hpp"
#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "core/evaluation_pipeline.hpp"
#include "faults/dictionary.hpp"
#include "faults/simulation_engine.hpp"
#include "ga/genetic_algorithm.hpp"
#include "io/dictionary_io.hpp"
#include "io/mapped_file.hpp"
#include "linalg/lu.hpp"
#include "linalg/rank1.hpp"
#include "linalg/simd.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "linalg/sparse.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/system.hpp"
#include "obs/metrics.hpp"
#include "service/diagnosis_service.hpp"
#include "service/dictionary_store.hpp"
#include "session.hpp"
#include "util/rng.hpp"

using namespace ftdiag;

namespace {

void BM_DenseComplexLu(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  linalg::ComplexMatrix a(n, n);
  std::vector<linalg::Complex> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = {rng.uniform(), rng.uniform()};
    for (std::size_t j = 0; j < n; ++j) a(i, j) = {rng.uniform(), rng.uniform()};
    a(i, i) += 4.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve_dense(a, b));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_DenseComplexLu)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Complexity(benchmark::oNCubed);

void BM_SparseComplexLu(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  linalg::CooMatrix<linalg::Complex> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, {4.0 + rng.uniform(), rng.uniform()});
    if (i + 1 < n) {
      coo.add(i, i + 1, {rng.uniform(), 0.0});
      coo.add(i + 1, i, {rng.uniform(), 0.0});
    }
  }
  std::vector<linalg::Complex> b(n, {1.0, 0.0});
  for (auto _ : state) {
    linalg::SparseLu<linalg::Complex> lu(coo);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseComplexLu)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

void BM_AcSolveBiquad(benchmark::State& state) {
  const auto cut = circuits::make_paper_cut();
  const mna::AcAnalysis analysis(cut.circuit);
  double f = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.solve(f));
    f = f < 50e3 ? f * 1.1 : 100.0;
  }
}
BENCHMARK(BM_AcSolveBiquad);

void BM_AcSolveLadder(benchmark::State& state) {
  circuits::RcLadderDesign design;
  design.sections = static_cast<std::size_t>(state.range(0));
  const auto cut = circuits::make_rc_ladder(design);
  const mna::AcAnalysis analysis(cut.circuit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.solve(1000.0));
  }
}
BENCHMARK(BM_AcSolveLadder)->Arg(10)->Arg(50)->Arg(149)->Arg(200)->Arg(400);

/// Synthetic frequency-block inputs for the Sherman–Morrison sweep
/// kernels: moderate magnitudes so no lane refuses and both variants do
/// the full arithmetic every iteration.
struct ShermanInputs {
  explicit ShermanInputs(std::size_t count)
      : scale_re(count), scale_im(count), vx0_re(count), vx0_im(count),
        vw_re(count), vw_im(count), x0_re(count), x0_im(count), w_re(count),
        w_im(count), out_re(count), out_im(count), refused(count) {
    Rng rng(3);
    for (std::size_t i = 0; i < count; ++i) {
      scale_re[i] = rng.uniform(-2.0, 2.0);
      scale_im[i] = rng.uniform(-2.0, 2.0);
      vx0_re[i] = rng.uniform(-1.0, 1.0);
      vx0_im[i] = rng.uniform(-1.0, 1.0);
      vw_re[i] = rng.uniform(-0.4, 0.4);
      vw_im[i] = rng.uniform(-0.4, 0.4);
      x0_re[i] = rng.uniform(-1.0, 1.0);
      x0_im[i] = rng.uniform(-1.0, 1.0);
      w_re[i] = rng.uniform(-1.0, 1.0);
      w_im[i] = rng.uniform(-1.0, 1.0);
    }
  }
  linalg::simd::AlignedVector scale_re, scale_im, vx0_re, vx0_im, vw_re,
      vw_im, x0_re, x0_im, w_re, w_im, out_re, out_im;
  std::vector<unsigned char> refused;
};

void BM_ShermanSweepScalar(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  ShermanInputs in(count);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::sherman_morrison_sweep(
        count, in.scale_re.data(), in.scale_im.data(), in.vx0_re.data(),
        in.vx0_im.data(), in.vw_re.data(), in.vw_im.data(), in.x0_re.data(),
        in.x0_im.data(), in.w_re.data(), in.w_im.data(),
        linalg::kRank1MaxGrowth, in.out_re.data(), in.out_im.data(),
        in.refused.data()));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ShermanSweepScalar)->Arg(64)->Arg(4096);

void BM_ShermanSweepSimd(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  ShermanInputs in(count);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::sherman_morrison_sweep_simd<>(
        count, in.scale_re.data(), in.scale_im.data(), in.vx0_re.data(),
        in.vx0_im.data(), in.vw_re.data(), in.vw_im.data(), in.x0_re.data(),
        in.x0_im.data(), in.w_re.data(), in.w_im.data(),
        linalg::kRank1MaxGrowth, in.out_re.data(), in.out_im.data(),
        in.refused.data()));
    benchmark::ClobberMemory();
  }
  state.counters["width"] =
      static_cast<double>(linalg::simd::DefaultPack::width);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ShermanSweepSimd)->Arg(64)->Arg(4096);

void BM_DictionaryBuild(benchmark::State& state) {
  const auto cut = circuits::make_paper_cut();
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const std::size_t grid_points = static_cast<std::size_t>(state.range(0));
  auto grid = mna::FrequencyGrid::log_sweep(10.0, 100e3, grid_points);
  const auto freqs = grid.frequencies();
  faults::SimOptions serial;
  serial.threads = 1;
  serial.reuse_factorization = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        faults::FaultDictionary::build(cut, universe, freqs, serial));
  }
  state.counters["faults"] = static_cast<double>(universe.fault_count());
}
BENCHMARK(BM_DictionaryBuild)->Arg(60)->Arg(240)->Arg(960)
    ->Unit(benchmark::kMillisecond);

void BM_DictionaryBuildEngine(benchmark::State& state) {
  const auto cut = circuits::make_paper_cut();
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const std::size_t grid_points = static_cast<std::size_t>(state.range(0));
  auto grid = mna::FrequencyGrid::log_sweep(10.0, 100e3, grid_points);
  const auto freqs = grid.frequencies();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        faults::FaultDictionary::build(cut, universe, freqs,
                                       faults::SimOptions{}));
  }
  state.counters["faults"] = static_cast<double>(universe.fault_count());
}
BENCHMARK(BM_DictionaryBuildEngine)->Arg(60)->Arg(240)->Arg(960)
    ->Unit(benchmark::kMillisecond);

class TrajectoryFixture : public benchmark::Fixture {
public:
  void SetUp(const benchmark::State&) override {
    if (dict) return;
    cut = std::make_unique<circuits::CircuitUnderTest>(
        circuits::make_paper_cut());
    dict = std::make_unique<faults::FaultDictionary>(
        faults::FaultDictionary::build(
            *cut, faults::FaultUniverse::over_testable(*cut)));
    evaluator = std::make_unique<core::TestVectorEvaluator>(*dict);
  }
  static std::unique_ptr<circuits::CircuitUnderTest> cut;
  static std::unique_ptr<faults::FaultDictionary> dict;
  static std::unique_ptr<core::TestVectorEvaluator> evaluator;
};
std::unique_ptr<circuits::CircuitUnderTest> TrajectoryFixture::cut;
std::unique_ptr<faults::FaultDictionary> TrajectoryFixture::dict;
std::unique_ptr<core::TestVectorEvaluator> TrajectoryFixture::evaluator;

BENCHMARK_F(TrajectoryFixture, BuildTrajectories)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->trajectories({{700.0, 1600.0}}));
  }
}

BENCHMARK_F(TrajectoryFixture, FitnessEvaluation)(benchmark::State& state) {
  // This is the GA's inner loop: one objective call.
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->fitness({{700.0, 1600.0}}));
  }
}

BENCHMARK_F(TrajectoryFixture, IntersectionCount)(benchmark::State& state) {
  const auto trajectories = evaluator->trajectories({{700.0, 1600.0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_intersections(trajectories));
  }
}

BENCHMARK_F(TrajectoryFixture, Diagnosis)(benchmark::State& state) {
  const auto engine = evaluator->make_engine({{700.0, 1600.0}});
  const core::Point observed = {0.0123, -0.0456};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.diagnose(observed));
  }
}

/// CSV-vs-binary dictionary deserialization on the paper CUT (both parse
/// in-memory images, so the comparison is format cost, not disk cache).
class DictionaryLoadFixture : public benchmark::Fixture {
public:
  void SetUp(const benchmark::State&) override {
    if (!csv_text.empty()) return;
    const auto cut = circuits::make_paper_cut();
    const auto dict = faults::FaultDictionary::build(
        cut, faults::FaultUniverse::over_testable(cut));
    std::ostringstream csv_os;
    io::save_dictionary(csv_os, dict);
    csv_text = csv_os.str();
    std::ostringstream fdx_os;
    io::save_dictionary_binary(fdx_os, dict);
    fdx_bytes = fdx_os.str();
  }
  static std::string csv_text;
  static std::string fdx_bytes;
};
std::string DictionaryLoadFixture::csv_text;
std::string DictionaryLoadFixture::fdx_bytes;

BENCHMARK_F(DictionaryLoadFixture, BM_DictionaryLoadCsv)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::load_dictionary(csv_text));
  }
  state.counters["bytes"] = static_cast<double>(csv_text.size());
}

BENCHMARK_F(DictionaryLoadFixture, BM_DictionaryLoadBinary)
(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::load_dictionary_binary(fdx_bytes));
  }
  state.counters["bytes"] = static_cast<double>(fdx_bytes.size());
}

BENCHMARK_F(DictionaryLoadFixture, BM_DictionaryMmapAttach)
(benchmark::State& state) {
  // Zero-copy attach: map + validate the whole image (checksums included)
  // without decoding a single double.  Compare against
  // BM_DictionaryLoadBinary, which allocates and decodes everything.
  const std::string path = "/tmp/ftdiag_bench_attach.fdx";
  std::ofstream(path, std::ios::binary) << fdx_bytes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::DictionaryView::map(path));
  }
  state.counters["bytes"] = static_cast<double>(fdx_bytes.size());
  std::remove(path.c_str());
}

/// End-to-end diagnoses/sec over a loopback TCP connection: the wire
/// protocol, per-connection reader/writer threads and the service's
/// micro-batching, all under the state.range(0) pipelined clients.
void BM_NetThroughput(benchmark::State& state) {
  if (!net::sockets_supported()) {
    state.SkipWithError("no socket support in this build");
    return;
  }
  static Session* session = nullptr;
  if (session == nullptr) {
    session = new Session(
        SessionBuilder(circuits::make_paper_cut()).build());
    session->use_vector(core::TestVector{{700.0, 1600.0}});
  }
  Rng rng(11);
  std::vector<core::Point> points;
  for (std::size_t i = 0; i < 256; ++i) {
    points.push_back(
        core::Point{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2)});
  }

  service::DiagnosisService service;
  service.add_session("paper", *session);
  net::Server server(service);

  const std::size_t n_clients = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kWindow = 8;
  std::size_t served = 0;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < n_clients; ++c) {
      clients.emplace_back([&, c] {
        net::Client client("127.0.0.1", server.port());
        std::vector<service::DiagnosisRequest> requests;
        for (std::size_t i = c; i < points.size(); i += n_clients) {
          service::DiagnosisRequest request;
          request.circuit = "paper";
          request.points.push_back(points[i]);
          requests.push_back(std::move(request));
        }
        benchmark::DoNotOptimize(
            client.diagnose_pipelined(requests, kWindow));
      });
    }
    for (auto& client : clients) client.join();
    served += points.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_NetThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Requests/sec through the DiagnosisService vs dispatcher threads: four
/// producers submit single-point requests as fast as the bounded queue
/// accepts them.
void BM_ServiceThroughput(benchmark::State& state) {
  static Session* session = nullptr;
  if (session == nullptr) {
    session = new Session(
        SessionBuilder(circuits::make_paper_cut()).build());
    session->use_vector(core::TestVector{{700.0, 1600.0}});
  }
  Rng rng(11);
  std::vector<core::Point> points;
  for (std::size_t i = 0; i < 512; ++i) {
    points.push_back(
        core::Point{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2)});
  }

  ServiceOptions options;
  options.workers = static_cast<std::size_t>(state.range(0));
  options.max_batch = 32;
  std::size_t served = 0;
  for (auto _ : state) {
    service::DiagnosisService service(options);
    service.add_session("paper", *session);
    constexpr std::size_t kProducers = 4;
    std::vector<std::future<service::DiagnosisReply>> futures(points.size());
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = p; i < points.size(); i += kProducers) {
          service::DiagnosisRequest request;
          request.circuit = "paper";
          request.points.push_back(points[i]);
          futures[i] = service.submit(std::move(request));
        }
      });
    }
    for (auto& producer : producers) producer.join();
    for (auto& future : futures) benchmark::DoNotOptimize(future.get());
    served += points.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(served));
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_FullPaperGa(benchmark::State& state) {
  core::AtpgFlow flow(circuits::make_paper_cut());
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.run());
  }
}
BENCHMARK(BM_FullPaperGa)->Unit(benchmark::kMillisecond);

/// The pre-batch search path: scalar objective, uncached trajectory
/// building, exact all-pairs intersection sweep, one thread.
ga::Objective make_serial_objective(const core::TestVectorEvaluator& evaluator) {
  return [&evaluator](const std::vector<double>& genes) {
    return evaluator.fitness(Session::to_test_vector(genes));
  };
}

/// The seed repository's count_intersections, verbatim: per-call segment
/// extraction, all-pairs sweep, per-conflict records.  Kept here so
/// BM_SearchSerial measures the genuine pre-batch-pipeline cost rather
/// than today's (already faster) exact sweep.
core::IntersectionReport legacy_count_intersections(
    const std::vector<core::FaultTrajectory>& trajectories,
    const core::IntersectionOptions& options = {}) {
  using namespace ftdiag::core;
  IntersectionReport report;
  if (trajectories.size() < 2) return report;

  const std::size_t dim = trajectories.front().dimension();
  double scale = 0.0;
  for (const auto& t : trajectories) scale = std::max(scale, t.max_excursion());
  if (scale <= 0.0) scale = 1.0;
  const double origin_ball = options.origin_exclusion * scale;
  const Point origin(dim, 0.0);

  std::vector<std::vector<Segment>> segs;
  segs.reserve(trajectories.size());
  for (const auto& t : trajectories) segs.push_back(t.segments());

  for (std::size_t i = 0; i < trajectories.size(); ++i) {
    for (std::size_t j = i + 1; j < trajectories.size(); ++j) {
      for (std::size_t si = 0; si < segs[i].size(); ++si) {
        for (std::size_t sj = 0; sj < segs[j].size(); ++sj) {
          const Segment& a = segs[i][si];
          const Segment& b = segs[j][sj];
          if (dim == 2) {
            const Intersection2d hit = intersect_segments_2d(a, b);
            if (hit.relation == SegmentRelation::kDisjoint) continue;
            if (hit.relation == SegmentRelation::kCollinearOverlap &&
                !options.count_overlaps) {
              continue;
            }
            if (distance(hit.at, origin) <= origin_ball) continue;
            report.conflicts.push_back({trajectories[i].site(),
                                        trajectories[j].site(), si, sj,
                                        hit.at, 0.0});
          } else {
            const double d = segment_segment_distance(a, b);
            if (d > options.near_threshold * scale) continue;
            const double a_to_origin = project_point(origin, a).distance;
            const double b_to_origin = project_point(origin, b).distance;
            if (a_to_origin <= origin_ball && b_to_origin <= origin_ball) {
              continue;
            }
            Point mid(dim, 0.0);
            for (std::size_t k = 0; k < dim; ++k) {
              mid[k] = 0.25 * (a.a[k] + a.b[k] + b.a[k] + b.b[k]);
            }
            report.conflicts.push_back({trajectories[i].site(),
                                        trajectories[j].site(), si, sj,
                                        std::move(mid), d});
          }
        }
      }
    }
  }
  report.count = report.conflicts.size();
  return report;
}

/// The paper fitness exactly as computed before the batch pipeline.
class LegacyPaperFitness final : public core::TrajectoryFitness {
public:
  [[nodiscard]] double evaluate(
      const std::vector<core::FaultTrajectory>& trajectories) const override {
    const auto report = legacy_count_intersections(trajectories);
    return 1.0 / (1.0 + static_cast<double>(report.count));
  }
  [[nodiscard]] std::string name() const override { return "legacy-paper"; }
};

core::TestVectorEvaluator make_exact_evaluator(
    const faults::FaultDictionary& dict) {
  return core::TestVectorEvaluator(dict, {},
                                   std::make_shared<LegacyPaperFitness>());
}

ga::GaConfig bench_ga_config() {
  ga::GaConfig config;
  config.population_size = 24;
  config.generations = 4;
  return config;
}

BENCHMARK_DEFINE_F(TrajectoryFixture, BM_SearchSerial)
(benchmark::State& state) {
  const auto exact_evaluator = make_exact_evaluator(*dict);
  const ga::Objective objective = make_serial_objective(exact_evaluator);
  const ga::GeneticAlgorithm ga(bench_ga_config());
  for (auto _ : state) {
    Rng rng(42);
    benchmark::DoNotOptimize(ga.optimize(objective, 2, {1.0, 5.0}, rng));
  }
}
BENCHMARK_REGISTER_F(TrajectoryFixture, BM_SearchSerial)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_DEFINE_F(TrajectoryFixture, BM_SearchBatch)
(benchmark::State& state) {
  core::PipelineOptions options;
  options.threads = 8;
  const ga::GeneticAlgorithm ga(bench_ga_config());
  core::PipelineStats stats;
  for (auto _ : state) {
    // A fresh pipeline per iteration: cold caches, the honest end-to-end
    // cost of one search.
    const core::EvaluationPipeline pipeline(*evaluator, options);
    Rng rng(42);
    benchmark::DoNotOptimize(ga.optimize(pipeline, 2, {1.0, 5.0}, rng));
    stats = pipeline.stats();
  }
  state.counters["column_hits"] = static_cast<double>(stats.column_hits);
  state.counters["genome_hits"] = static_cast<double>(stats.genome_hits);
}
BENCHMARK_REGISTER_F(TrajectoryFixture, BM_SearchBatch)
    ->Unit(benchmark::kMillisecond);

/// One row of the dense-vs-sparse n-scaling sweep: a full engine
/// dictionary build on an n-section RC ladder with the solver backend
/// forced each way.  dense_ms < 0 means the dense leg was skipped.
struct ScalingPoint {
  std::size_t sections = 0;
  std::size_t unknowns = 0;
  std::size_t faults = 0;
  double dense_ms = -1.0;
  double sparse_ms = 0.0;
};

/// Dictionary-build wall time vs circuit size, n in {10, 100, 1000, 5000}.
/// The testable stride scales with n so the fault universe stays bounded
/// and the measurement isolates the per-frequency solve cost; the dense
/// leg stops at 1000 (an O(n^3) factor per frequency is already minutes
/// at 5000).
std::vector<ScalingPoint> run_scaling_sweep(std::size_t grid_points) {
  using Clock = std::chrono::steady_clock;
  std::vector<ScalingPoint> rows;
  for (const std::size_t sections :
       {std::size_t{10}, std::size_t{100}, std::size_t{1000},
        std::size_t{5000}}) {
    circuits::RcLadderDesign design;
    design.sections = sections;
    design.testable_stride = std::max<std::size_t>(1, sections / 4);
    const auto cut = circuits::make_rc_ladder(design);
    const auto universe = faults::FaultUniverse::over_testable(cut);
    const auto faults_list = universe.enumerate();
    const auto freqs =
        mna::FrequencyGrid::log_sweep(cut.band_low_hz, cut.band_high_hz,
                                      grid_points)
            .frequencies();

    ScalingPoint row;
    row.sections = sections;
    row.unknowns = mna::MnaSystem(cut.circuit).unknown_count();
    row.faults = universe.fault_count();

    auto build_ms = [&](mna::SolverBackend backend, int reps) {
      faults::SimOptions sim;
      sim.backend = backend;
      double best = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        const auto start = Clock::now();
        const faults::SimulationEngine engine(cut, sim);
        benchmark::DoNotOptimize(engine.simulate_all(faults_list, freqs));
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        if (rep == 0 || ms < best) best = ms;
      }
      return best;
    };

    const int reps = sections >= 1000 ? 1 : 3;
    row.sparse_ms = build_ms(mna::SolverBackend::kSparse, reps);
    if (sections <= 1000) {
      row.dense_ms = build_ms(mna::SolverBackend::kDense, reps);
    }
    std::printf("scaling n=%zu (%zu unknowns, %zu faults): sparse %.3f ms",
                sections, row.unknowns, row.faults, row.sparse_ms);
    if (row.dense_ms >= 0.0) {
      std::printf(", dense %.3f ms (%.2fx)", row.dense_ms,
                  row.dense_ms / row.sparse_ms);
    }
    std::printf("\n");
    rows.push_back(row);
  }
  return rows;
}

/// Scalar-vs-SIMD wall time of the Sherman–Morrison sweep kernel on one
/// synthetic frequency block (best of several reps, many passes per rep
/// so the measurement is well above timer resolution).  The returned
/// ratio scalar/simd is ~1 in a forced-scalar build (DefaultPack width 1)
/// and > 1 whenever the vector kernel pays for itself.
double sherman_kernel_speedup() {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kCount = 4096;
  constexpr int kPasses = 2000;
  ShermanInputs in(kCount);
  auto best_of = [&](auto&& kernel) {
    double best_ms = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = Clock::now();
      for (int pass = 0; pass < kPasses; ++pass) {
        benchmark::DoNotOptimize(kernel());
        benchmark::ClobberMemory();
      }
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };
  const double scalar_ms = best_of([&] {
    return linalg::sherman_morrison_sweep(
        kCount, in.scale_re.data(), in.scale_im.data(), in.vx0_re.data(),
        in.vx0_im.data(), in.vw_re.data(), in.vw_im.data(), in.x0_re.data(),
        in.x0_im.data(), in.w_re.data(), in.w_im.data(),
        linalg::kRank1MaxGrowth, in.out_re.data(), in.out_im.data(),
        in.refused.data());
  });
  const double simd_ms = best_of([&] {
    return linalg::sherman_morrison_sweep_simd<>(
        kCount, in.scale_re.data(), in.scale_im.data(), in.vx0_re.data(),
        in.vx0_im.data(), in.vw_re.data(), in.vw_im.data(), in.x0_re.data(),
        in.x0_im.data(), in.w_re.data(), in.w_im.data(),
        linalg::kRank1MaxGrowth, in.out_re.data(), in.out_im.data(),
        in.refused.data());
  });
  return scalar_ms / simd_ms;
}

/// Serial-vs-engine dictionary build comparison on the largest registry
/// circuit (by MNA unknown count), plus the dense-vs-sparse n-scaling
/// sweep and the scalar-vs-SIMD kernel ratio, written to
/// BENCH_engine.json.
void write_engine_report(const char* path) {
  using Clock = std::chrono::steady_clock;

  std::string largest_name;
  std::size_t largest_unknowns = 0;
  for (const auto& name : circuits::registry_names()) {
    const auto cut = circuits::make_by_name(name);
    const std::size_t unknowns = mna::MnaSystem(cut.circuit).unknown_count();
    if (unknowns > largest_unknowns) {
      largest_unknowns = unknowns;
      largest_name = name;
    }
  }
  const auto cut = circuits::make_by_name(largest_name);
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const auto faults = universe.enumerate();
  const auto freqs = cut.dictionary_grid.frequencies();

  faults::EngineStats stats;
  auto best_of = [&](const faults::SimOptions& sim) {
    const faults::SimulationEngine engine(cut, sim);
    double best_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = Clock::now();
      const auto batch = engine.simulate_all(faults, freqs);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      stats = batch.stats;
    }
    return best_ms;
  };

  faults::SimOptions serial;
  serial.threads = 1;
  serial.reuse_factorization = false;
  const double serial_ms = best_of(serial);
  const faults::SimOptions engine_options;
  const double engine_ms = best_of(engine_options);  // stats = engine run's

  const double kernel_speedup = sherman_kernel_speedup();

  constexpr std::size_t kScalingGridPoints = 8;
  const auto scaling = run_scaling_sweep(kScalingGridPoints);

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"dictionary_build_serial_vs_engine\",\n"
               "  \"circuit\": \"%s\",\n"
               "  \"unknowns\": %zu,\n"
               "  \"faults\": %zu,\n"
               "  \"grid_points\": %zu,\n"
               "  \"threads\": %zu,\n"
               "  \"serial_ms\": %.3f,\n"
               "  \"engine_ms\": %.3f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"rank1_solves\": %zu,\n"
               "  \"full_solves\": %zu,\n"
               "  \"simd_width\": %zu,\n"
               "  \"simd_kernel_speedup\": %.2f,\n"
               "  \"scaling_grid_points\": %zu,\n"
               "  \"scaling\": [\n",
               largest_name.c_str(), largest_unknowns,
               universe.fault_count(), freqs.size(),
               engine_options.resolved_threads(), serial_ms, engine_ms,
               serial_ms / engine_ms, stats.rank1_solves, stats.full_solves,
               linalg::simd::DefaultPack::width, kernel_speedup,
               kScalingGridPoints);
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    const auto& row = scaling[i];
    std::fprintf(out,
                 "    {\"sections\": %zu, \"unknowns\": %zu, "
                 "\"faults\": %zu, ",
                 row.sections, row.unknowns, row.faults);
    if (row.dense_ms >= 0.0) {
      std::fprintf(out,
                   "\"dense_ms\": %.3f, \"sparse_ms\": %.3f, "
                   "\"sparse_speedup\": %.2f}",
                   row.dense_ms, row.sparse_ms, row.dense_ms / row.sparse_ms);
    } else {
      std::fprintf(out,
                   "\"dense_ms\": null, \"sparse_ms\": %.3f, "
                   "\"sparse_speedup\": null}",
                   row.sparse_ms);
    }
    std::fprintf(out, "%s\n", i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(out,
               "  ]\n"
               "}\n");
  std::fclose(out);
  std::printf("engine dictionary build (%s): serial %.3f ms, engine %.3f ms "
              "(%.2fx); sherman kernel width %zu, simd %.2fx -> %s\n",
              largest_name.c_str(), serial_ms, engine_ms,
              serial_ms / engine_ms, linalg::simd::DefaultPack::width,
              kernel_speedup, path);
}

/// Serial-vs-batch GA search comparison on the largest registry circuit
/// (by MNA unknown count), written to BENCH_search.json.  The serial leg
/// is the pre-batch pipeline (scalar objective, uncached sampling, exact
/// all-pairs sweep, one thread); the batch leg runs the evaluation
/// pipeline at 8 threads with the signature cache and pruned counting.
void write_search_report(const char* path) {
  using Clock = std::chrono::steady_clock;

  std::string largest_name;
  std::size_t largest_unknowns = 0;
  for (const auto& name : circuits::registry_names()) {
    const auto cut = circuits::make_by_name(name);
    const std::size_t unknowns = mna::MnaSystem(cut.circuit).unknown_count();
    if (unknowns > largest_unknowns) {
      largest_unknowns = unknowns;
      largest_name = name;
    }
  }
  const auto cut = circuits::make_by_name(largest_name);
  const auto dictionary = faults::FaultDictionary::build(
      cut, faults::FaultUniverse::over_testable(cut));
  const ga::GeneBounds bounds{std::log10(cut.band_low_hz),
                              std::log10(cut.band_high_hz)};
  const ga::GeneticAlgorithm ga(ga::GaConfig::paper());
  constexpr std::size_t kThreads = 8;

  auto best_of = [&](auto&& run) {
    double best_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = Clock::now();
      run();
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };

  std::size_t evaluations = 0;
  const auto exact_evaluator = make_exact_evaluator(dictionary);
  const ga::Objective objective = make_serial_objective(exact_evaluator);
  const double serial_ms = best_of([&] {
    Rng rng(42);
    evaluations = ga.optimize(objective, 2, bounds, rng).evaluations;
  });

  const core::TestVectorEvaluator evaluator(dictionary);
  core::PipelineOptions options;
  options.threads = kThreads;
  core::PipelineStats stats;
  const double batch_ms = best_of([&] {
    const core::EvaluationPipeline pipeline(evaluator, options);
    Rng rng(42);
    (void)ga.optimize(pipeline, 2, bounds, rng);
    stats = pipeline.stats();
  });

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"ga_search_serial_vs_batch\",\n"
               "  \"circuit\": \"%s\",\n"
               "  \"unknowns\": %zu,\n"
               "  \"faults\": %zu,\n"
               "  \"population\": %zu,\n"
               "  \"generations\": %zu,\n"
               "  \"evaluations\": %zu,\n"
               "  \"threads\": %zu,\n"
               "  \"serial_ms\": %.3f,\n"
               "  \"batch_ms\": %.3f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"column_hits\": %zu,\n"
               "  \"column_misses\": %zu,\n"
               "  \"genome_hits\": %zu\n"
               "}\n",
               largest_name.c_str(), largest_unknowns,
               dictionary.fault_count(), ga.config().population_size,
               ga.config().generations, evaluations, kThreads, serial_ms,
               batch_ms, serial_ms / batch_ms, stats.column_hits,
               stats.column_misses, stats.genome_hits);
  std::fclose(out);
  std::printf("ga search (%s): serial %.3f ms, batch %.3f ms (%.2fx) -> %s\n",
              largest_name.c_str(), serial_ms, batch_ms,
              serial_ms / batch_ms, path);
}

bool dictionaries_identical(const faults::FaultDictionary& a,
                            const faults::FaultDictionary& b) {
  if (a.fault_count() != b.fault_count() ||
      a.frequencies() != b.frequencies() ||
      a.golden().values() != b.golden().values()) {
    return false;
  }
  for (std::size_t i = 0; i < a.fault_count(); ++i) {
    if (!(a.entries()[i].fault == b.entries()[i].fault) ||
        a.entries()[i].response.values() != b.entries()[i].response.values()) {
      return false;
    }
  }
  return true;
}

/// Serving-layer report on the largest registry circuit: CSV vs binary
/// dictionary load, binary round-trip bit-identity, and service
/// throughput vs dispatcher threads.  Written to BENCH_service.json.
void write_service_report(const char* path) {
  using Clock = std::chrono::steady_clock;

  const auto cut = circuits::make_by_name("state_variable");
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const auto dictionary = faults::FaultDictionary::build(cut, universe);

  std::ostringstream csv_os;
  io::save_dictionary(csv_os, dictionary);
  const std::string csv_text = csv_os.str();
  std::ostringstream fdx_os;
  io::save_dictionary_binary(fdx_os, dictionary);
  const std::string fdx_bytes = fdx_os.str();

  const bool round_trip_ok =
      dictionaries_identical(dictionary,
                             io::load_dictionary_binary(fdx_bytes)) &&
      dictionaries_identical(dictionary, io::load_dictionary(csv_text));

  auto best_of = [](auto&& run) {
    double best_ms = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      const auto start = Clock::now();
      run();
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };
  const double csv_ms =
      best_of([&] { benchmark::DoNotOptimize(io::load_dictionary(csv_text)); });
  const double fdx_ms = best_of(
      [&] { benchmark::DoNotOptimize(io::load_dictionary_binary(fdx_bytes)); });

  // Zero-copy attach: map + validate (checksums included), no decode.
  const std::string mmap_path = "/tmp/ftdiag_bench_service.fdx";
  std::ofstream(mmap_path, std::ios::binary) << fdx_bytes;
  bool mmap_zero_copy = false;
  const double mmap_ms = best_of([&] {
    const auto view = io::DictionaryView::map(mmap_path);
    mmap_zero_copy = view.zero_copy();
    benchmark::DoNotOptimize(view.frequencies().data());
  });
  std::remove(mmap_path.c_str());

  // Throughput: four producers pushing single-point requests, measured at
  // 1 and 4 dispatcher threads.
  Session session = SessionBuilder(cut).build();
  session.use_vector(core::TestVector{{700.0, 1600.0}});
  Rng rng(11);
  std::vector<core::Point> points;
  for (std::size_t i = 0; i < 1024; ++i) {
    points.push_back(
        core::Point{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2)});
  }
  auto requests_per_second = [&](std::size_t workers,
                                 service::ServiceStats* stats_out = nullptr) {
    ServiceOptions options;
    options.workers = workers;
    options.max_batch = 32;
    double best_rps = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      service::DiagnosisService service(options);
      service.add_session("state_variable", session);
      const auto start = Clock::now();
      constexpr std::size_t kProducers = 4;
      std::vector<std::future<service::DiagnosisReply>> futures(points.size());
      std::vector<std::thread> producers;
      for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          for (std::size_t i = p; i < points.size(); i += kProducers) {
            service::DiagnosisRequest request;
            request.circuit = "state_variable";
            request.points.push_back(points[i]);
            futures[i] = service.submit(std::move(request));
          }
        });
      }
      for (auto& producer : producers) producer.join();
      for (auto& future : futures) benchmark::DoNotOptimize(future.get());
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      best_rps = std::max(best_rps,
                          static_cast<double>(points.size()) / seconds);
      if (stats_out != nullptr) *stats_out = service.stats();
    }
    return best_rps;
  };
  // Workers sweep: the persistent pool must not make more dispatchers
  // slower than one (the fork/join regression this report used to show).
  const double rps_1 = requests_per_second(1);
  const double rps_2 = requests_per_second(2);
  service::ServiceStats service_stats;
  const double rps_4 = requests_per_second(4, &service_stats);

  // Observability overhead: only the timing layer (histograms, spans) is
  // gated by obs::enabled(), so toggling it isolates exactly the cost the
  // instrumentation adds to the hot paths — counters stay on either way.
  // Runs alternate on/off so slow machine phases hit both sides equally,
  // and each side is summarised by its *minimum* — the fastest run is the
  // one least disturbed by scheduling noise, so min(on)/min(off) is the
  // most noise-resistant estimate of the true cost ratio.  Sub-noise
  // differences clamp to zero.
  const bool obs_was_enabled = obs::enabled();
  auto alternated_overhead_pct = [&](auto&& run) {
    double min_on = std::numeric_limits<double>::infinity();
    double min_off = min_on;
    for (int rep = 0; rep < 31; ++rep) {
      obs::set_enabled(true);
      auto start = Clock::now();
      run();
      min_on = std::min(
          min_on,
          std::chrono::duration<double>(Clock::now() - start).count());
      obs::set_enabled(false);
      start = Clock::now();
      run();
      min_off = std::min(
          min_off,
          std::chrono::duration<double>(Clock::now() - start).count());
    }
    return std::max(0.0, (min_on / min_off - 1.0) * 100.0);
  };
  const double engine_obs_overhead_pct = alternated_overhead_pct([&] {
    for (int i = 0; i < 10; ++i) {
      benchmark::DoNotOptimize(
          faults::FaultDictionary::build(cut, universe, faults::SimOptions{}));
    }
  });
  ServiceOptions overhead_options;
  overhead_options.workers = 2;
  overhead_options.max_batch = 32;
  // The service lives outside the timed region: constructing one spawns
  // and joins worker threads, which on a small box costs far more (and
  // far less predictably) than the request path being measured.
  service::DiagnosisService overhead_service(overhead_options);
  overhead_service.add_session("state_variable", session);
  const double service_obs_overhead_pct = alternated_overhead_pct([&] {
    for (int pass = 0; pass < 10; ++pass) {
      std::vector<std::future<service::DiagnosisReply>> futures;
      futures.reserve(points.size());
      for (const auto& point : points) {
        service::DiagnosisRequest request;
        request.circuit = "state_variable";
        request.points.push_back(point);
        futures.push_back(overhead_service.submit(std::move(request)));
      }
      for (auto& future : futures) benchmark::DoNotOptimize(future.get());
    }
  });
  obs::set_enabled(obs_was_enabled);

  // Store hit-rate over a warm->cold->warm exercise: one build, one
  // memory hit, one disk hit from a second store over the same root.
  const std::string store_dir = "/tmp/ftdiag_bench_store";
  std::filesystem::remove_all(store_dir);
  double store_hit_rate = 0.0;
  {
    service::StoreOptions store_options;
    store_options.root_dir = store_dir;
    const faults::DeviationSpec spec;
    const faults::SimOptions sim;
    service::DictionaryStore first(store_options);
    benchmark::DoNotOptimize(first.get(cut, spec, sim));   // cold build
    benchmark::DoNotOptimize(first.get(cut, spec, sim));   // memory hit
    service::DictionaryStore second(store_options);
    benchmark::DoNotOptimize(second.get(cut, spec, sim));  // disk hit
    const auto s1 = first.stats();
    const auto s2 = second.stats();
    const double hits = static_cast<double>(s1.memory_hits + s2.memory_hits +
                                            s1.disk_hits + s2.disk_hits);
    store_hit_rate = hits / (hits + static_cast<double>(s1.builds + s2.builds));
  }
  std::filesystem::remove_all(store_dir);

  // Networked serving: loopback server, 4 pipelined clients, per-request
  // submit->reply latency percentiles over the wire.
  double net_rps = 0.0;
  double net_p50_us = 0.0;
  double net_p95_us = 0.0;
  double net_p99_us = 0.0;
  if (net::sockets_supported()) {
    service::DiagnosisService service;
    service.add_session("state_variable", session);
    net::Server server(service);
    constexpr std::size_t kClients = 4;
    constexpr std::size_t kWindow = 8;
    constexpr std::size_t kPerClient = 512;
    std::vector<std::vector<double>> latencies(kClients);
    const auto start = Clock::now();
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        net::Client client("127.0.0.1", server.port());
        std::deque<Clock::time_point> sent_at;
        std::size_t sent = 0;
        std::size_t received = 0;
        while (received < kPerClient) {
          while (sent < kPerClient && sent - received < kWindow) {
            service::DiagnosisRequest request;
            request.circuit = "state_variable";
            request.points.push_back(points[(c + sent) % points.size()]);
            sent_at.push_back(Clock::now());
            (void)client.send(request);
            ++sent;
          }
          benchmark::DoNotOptimize(client.receive());
          latencies[c].push_back(
              std::chrono::duration<double, std::micro>(Clock::now() -
                                                        sent_at.front())
                  .count());
          sent_at.pop_front();
          ++received;
        }
      });
    }
    for (auto& client : clients) client.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    std::vector<double> all;
    for (auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    auto percentile = [&](double fraction) {
      return all[static_cast<std::size_t>(fraction *
                                          static_cast<double>(all.size() - 1))];
    };
    net_rps = static_cast<double>(all.size()) / seconds;
    net_p50_us = percentile(0.50);
    net_p95_us = percentile(0.95);
    net_p99_us = percentile(0.99);
  }

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"dictionary_store_and_service\",\n"
               "  \"circuit\": \"state_variable\",\n"
               "  \"faults\": %zu,\n"
               "  \"grid_points\": %zu,\n"
               "  \"csv_bytes\": %zu,\n"
               "  \"binary_bytes\": %zu,\n"
               "  \"csv_load_ms\": %.3f,\n"
               "  \"binary_load_ms\": %.3f,\n"
               "  \"load_speedup\": %.2f,\n"
               "  \"mmap_load_ms\": %.3f,\n"
               "  \"mmap_zero_copy\": %s,\n"
               "  \"round_trip_bit_identical\": %s,\n"
               "  \"hardware_threads\": %zu,\n"
               "  \"service_rps_workers1\": %.0f,\n"
               "  \"service_rps_workers2\": %.0f,\n"
               "  \"service_rps_workers4\": %.0f,\n"
               "  \"queue_depth\": %zu,\n"
               "  \"mean_batch\": %.2f,\n"
               "  \"store_hit_rate\": %.3f,\n"
               "  \"service_obs_overhead_pct\": %.2f,\n"
               "  \"engine_obs_overhead_pct\": %.2f,\n"
               "  \"net_rps\": %.0f,\n"
               "  \"net_p50_us\": %.0f,\n"
               "  \"net_p95_us\": %.0f,\n"
               "  \"net_p99_us\": %.0f\n"
               "}\n",
               dictionary.fault_count(), dictionary.frequencies().size(),
               csv_text.size(), fdx_bytes.size(), csv_ms, fdx_ms,
               csv_ms / fdx_ms, mmap_ms, mmap_zero_copy ? "true" : "false",
               round_trip_ok ? "true" : "false",
               static_cast<std::size_t>(std::thread::hardware_concurrency()),
               rps_1, rps_2, rps_4, service_stats.queue_depth,
               service_stats.mean_batch, store_hit_rate,
               service_obs_overhead_pct, engine_obs_overhead_pct, net_rps,
               net_p50_us, net_p95_us, net_p99_us);
  std::fclose(out);
  std::printf("dictionary load (state_variable): csv %.3f ms, binary %.3f ms "
              "(%.2fx), mmap attach %.3f ms%s, round trip %s; service "
              "%.0f -> %.0f -> %.0f req/s (mean batch %.2f, store hit-rate "
              "%.3f); obs overhead service %.2f%%, engine %.2f%%; "
              "net %.0f req/s (p50 %.0f us, p95 %.0f us, p99 %.0f us) "
              "-> %s\n",
              csv_ms, fdx_ms, csv_ms / fdx_ms, mmap_ms,
              mmap_zero_copy ? " (zero-copy)" : "",
              round_trip_ok ? "bit-identical" : "MISMATCH", rps_1, rps_2,
              rps_4, service_stats.mean_batch, store_hit_rate,
              service_obs_overhead_pct, engine_obs_overhead_pct, net_rps,
              net_p50_us, net_p95_us, net_p99_us, path);
}

}  // namespace

int main(int argc, char** argv) {
  // The serial-vs-engine and serial-vs-batch reports run on a full sweep
  // (no arguments) or when explicitly requested via
  // FTDIAG_ENGINE_REPORT=<path> / FTDIAG_SEARCH_REPORT=<path>, so filtered
  // micro-runs don't pay for the extra dictionary builds and GA runs.
  const char* engine_report_path = std::getenv("FTDIAG_ENGINE_REPORT");
  const char* search_report_path = std::getenv("FTDIAG_SEARCH_REPORT");
  const char* service_report_path = std::getenv("FTDIAG_SERVICE_REPORT");
  const bool full_run = (argc == 1);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (engine_report_path != nullptr || full_run) {
    write_engine_report(engine_report_path != nullptr ? engine_report_path
                                                      : "BENCH_engine.json");
  }
  if (search_report_path != nullptr || full_run) {
    write_search_report(search_report_path != nullptr ? search_report_path
                                                      : "BENCH_search.json");
  }
  if (service_report_path != nullptr || full_run) {
    write_service_report(service_report_path != nullptr
                             ? service_report_path
                             : "BENCH_service.json");
  }
  return 0;
}
