/// Perf: google-benchmark microbenchmarks of every pipeline stage —
/// MNA solves (dense + sparse), fault-dictionary construction (serial and
/// engine), trajectory building, intersection counting, fitness evaluation
/// and diagnosis.  After the registered benchmarks run, main() times the
/// serial vs engine dictionary build on the largest registry circuit and
/// writes the comparison to BENCH_engine.json so the perf trajectory of
/// the simulation engine is tracked per PR.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <string>

#include "circuits/ladders.hpp"
#include "circuits/nf_biquad.hpp"
#include "circuits/registry.hpp"
#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "faults/dictionary.hpp"
#include "faults/simulation_engine.hpp"
#include "ga/genetic_algorithm.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "mna/ac_analysis.hpp"
#include "mna/system.hpp"
#include "util/rng.hpp"

using namespace ftdiag;

namespace {

void BM_DenseComplexLu(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  linalg::ComplexMatrix a(n, n);
  std::vector<linalg::Complex> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = {rng.uniform(), rng.uniform()};
    for (std::size_t j = 0; j < n; ++j) a(i, j) = {rng.uniform(), rng.uniform()};
    a(i, i) += 4.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve_dense(a, b));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_DenseComplexLu)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Complexity(benchmark::oNCubed);

void BM_SparseComplexLu(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  linalg::CooMatrix<linalg::Complex> coo(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    coo.add(i, i, {4.0 + rng.uniform(), rng.uniform()});
    if (i + 1 < n) {
      coo.add(i, i + 1, {rng.uniform(), 0.0});
      coo.add(i + 1, i, {rng.uniform(), 0.0});
    }
  }
  std::vector<linalg::Complex> b(n, {1.0, 0.0});
  for (auto _ : state) {
    linalg::SparseLu<linalg::Complex> lu(coo);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseComplexLu)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

void BM_AcSolveBiquad(benchmark::State& state) {
  const auto cut = circuits::make_paper_cut();
  const mna::AcAnalysis analysis(cut.circuit);
  double f = 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.solve(f));
    f = f < 50e3 ? f * 1.1 : 100.0;
  }
}
BENCHMARK(BM_AcSolveBiquad);

void BM_AcSolveLadder(benchmark::State& state) {
  circuits::RcLadderDesign design;
  design.sections = static_cast<std::size_t>(state.range(0));
  const auto cut = circuits::make_rc_ladder(design);
  const mna::AcAnalysis analysis(cut.circuit);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.solve(1000.0));
  }
}
BENCHMARK(BM_AcSolveLadder)->Arg(10)->Arg(50)->Arg(149)->Arg(200)->Arg(400);

void BM_DictionaryBuild(benchmark::State& state) {
  const auto cut = circuits::make_paper_cut();
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const std::size_t grid_points = static_cast<std::size_t>(state.range(0));
  auto grid = mna::FrequencyGrid::log_sweep(10.0, 100e3, grid_points);
  const auto freqs = grid.frequencies();
  faults::SimOptions serial;
  serial.threads = 1;
  serial.reuse_factorization = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        faults::FaultDictionary::build(cut, universe, freqs, serial));
  }
  state.counters["faults"] = static_cast<double>(universe.fault_count());
}
BENCHMARK(BM_DictionaryBuild)->Arg(60)->Arg(240)->Arg(960)
    ->Unit(benchmark::kMillisecond);

void BM_DictionaryBuildEngine(benchmark::State& state) {
  const auto cut = circuits::make_paper_cut();
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const std::size_t grid_points = static_cast<std::size_t>(state.range(0));
  auto grid = mna::FrequencyGrid::log_sweep(10.0, 100e3, grid_points);
  const auto freqs = grid.frequencies();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        faults::FaultDictionary::build(cut, universe, freqs,
                                       faults::SimOptions{}));
  }
  state.counters["faults"] = static_cast<double>(universe.fault_count());
}
BENCHMARK(BM_DictionaryBuildEngine)->Arg(60)->Arg(240)->Arg(960)
    ->Unit(benchmark::kMillisecond);

class TrajectoryFixture : public benchmark::Fixture {
public:
  void SetUp(const benchmark::State&) override {
    if (dict) return;
    cut = std::make_unique<circuits::CircuitUnderTest>(
        circuits::make_paper_cut());
    dict = std::make_unique<faults::FaultDictionary>(
        faults::FaultDictionary::build(
            *cut, faults::FaultUniverse::over_testable(*cut)));
    evaluator = std::make_unique<core::TestVectorEvaluator>(*dict);
  }
  static std::unique_ptr<circuits::CircuitUnderTest> cut;
  static std::unique_ptr<faults::FaultDictionary> dict;
  static std::unique_ptr<core::TestVectorEvaluator> evaluator;
};
std::unique_ptr<circuits::CircuitUnderTest> TrajectoryFixture::cut;
std::unique_ptr<faults::FaultDictionary> TrajectoryFixture::dict;
std::unique_ptr<core::TestVectorEvaluator> TrajectoryFixture::evaluator;

BENCHMARK_F(TrajectoryFixture, BuildTrajectories)(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->trajectories({{700.0, 1600.0}}));
  }
}

BENCHMARK_F(TrajectoryFixture, FitnessEvaluation)(benchmark::State& state) {
  // This is the GA's inner loop: one objective call.
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->fitness({{700.0, 1600.0}}));
  }
}

BENCHMARK_F(TrajectoryFixture, IntersectionCount)(benchmark::State& state) {
  const auto trajectories = evaluator->trajectories({{700.0, 1600.0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_intersections(trajectories));
  }
}

BENCHMARK_F(TrajectoryFixture, Diagnosis)(benchmark::State& state) {
  const auto engine = evaluator->make_engine({{700.0, 1600.0}});
  const core::Point observed = {0.0123, -0.0456};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.diagnose(observed));
  }
}

void BM_FullPaperGa(benchmark::State& state) {
  core::AtpgFlow flow(circuits::make_paper_cut());
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.run());
  }
}
BENCHMARK(BM_FullPaperGa)->Unit(benchmark::kMillisecond);

/// Serial-vs-engine dictionary build comparison on the largest registry
/// circuit (by MNA unknown count), written to BENCH_engine.json.
void write_engine_report(const char* path) {
  using Clock = std::chrono::steady_clock;

  std::string largest_name;
  std::size_t largest_unknowns = 0;
  for (const auto& name : circuits::registry_names()) {
    const auto cut = circuits::make_by_name(name);
    const std::size_t unknowns = mna::MnaSystem(cut.circuit).unknown_count();
    if (unknowns > largest_unknowns) {
      largest_unknowns = unknowns;
      largest_name = name;
    }
  }
  const auto cut = circuits::make_by_name(largest_name);
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const auto faults = universe.enumerate();
  const auto freqs = cut.dictionary_grid.frequencies();

  faults::EngineStats stats;
  auto best_of = [&](const faults::SimOptions& sim) {
    const faults::SimulationEngine engine(cut, sim);
    double best_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = Clock::now();
      const auto batch = engine.simulate_all(faults, freqs);
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      stats = batch.stats;
    }
    return best_ms;
  };

  faults::SimOptions serial;
  serial.threads = 1;
  serial.reuse_factorization = false;
  const double serial_ms = best_of(serial);
  const faults::SimOptions engine_options;
  const double engine_ms = best_of(engine_options);  // stats = engine run's

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"dictionary_build_serial_vs_engine\",\n"
               "  \"circuit\": \"%s\",\n"
               "  \"unknowns\": %zu,\n"
               "  \"faults\": %zu,\n"
               "  \"grid_points\": %zu,\n"
               "  \"threads\": %zu,\n"
               "  \"serial_ms\": %.3f,\n"
               "  \"engine_ms\": %.3f,\n"
               "  \"speedup\": %.2f,\n"
               "  \"rank1_solves\": %zu,\n"
               "  \"full_solves\": %zu\n"
               "}\n",
               largest_name.c_str(), largest_unknowns,
               universe.fault_count(), freqs.size(),
               engine_options.resolved_threads(), serial_ms, engine_ms,
               serial_ms / engine_ms, stats.rank1_solves, stats.full_solves);
  std::fclose(out);
  std::printf("engine dictionary build (%s): serial %.3f ms, engine %.3f ms "
              "(%.2fx) -> %s\n",
              largest_name.c_str(), serial_ms, engine_ms,
              serial_ms / engine_ms, path);
}

}  // namespace

int main(int argc, char** argv) {
  // The serial-vs-engine report runs on a full sweep (no arguments) or
  // when explicitly requested via FTDIAG_ENGINE_REPORT=<path>, so
  // filtered micro-runs don't pay for six extra dictionary builds.
  const char* report_path = std::getenv("FTDIAG_ENGINE_REPORT");
  const bool full_run = (argc == 1);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (report_path != nullptr || full_run) {
    write_engine_report(report_path != nullptr ? report_path
                                               : "BENCH_engine.json");
  }
  return 0;
}
