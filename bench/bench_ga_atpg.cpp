/// §2.4 reproduction: the paper's GA run.
///
/// 128 individuals, 15 generations, 50 % reproduction rate, 40 % mutation
/// rate, roulette-wheel selection, fitness 1/(1+I), stop on generation
/// count.  Prints the convergence series and the resulting test vector,
/// then repeats over several seeds to show run-to-run spread.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "ftdiag.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

int main() {
  bench::banner("GA (paper section 2.4)",
                "GA search for the 2-frequency test vector, paper parameters",
                "nf_biquad CUT, 56-fault dictionary, fitness 1/(1+I)");

  Session session = Session::open("builtin:nf_biquad");
  const auto result = session.generate_tests();
  io::print_atpg_report(std::cout, result);

  // Run-to-run statistics over 10 seeds: does the paper's budget reliably
  // reach a non-intersecting vector?
  AsciiTable seeds({"seed", "best fitness", "intersections", "f1 [Hz]",
                    "f2 [Hz]", "evaluations"});
  std::size_t perfect = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ga::GeneticAlgorithm ga(ga::GaConfig::paper());
    const auto run = session.run_search(ga, seed);
    perfect += run.best.intersections == 0 ? 1 : 0;
    seeds.add_row({std::to_string(seed),
                   str::format("%.4f", run.best.fitness),
                   std::to_string(run.best.intersections),
                   str::format("%.1f", run.best.vector.frequencies_hz[0]),
                   str::format("%.1f", run.best.vector.frequencies_hz[1]),
                   std::to_string(run.search.evaluations)});
  }
  seeds.print(std::cout, "paper GA across 10 seeds");
  std::printf("\nseeds reaching zero intersections: %zu / 10\n", perfect);

  // Operator ablation: selection x crossover under the paper budget.
  // The paper objective saturates at 1.0 here (every combination finds a
  // crossing-free pair), so the ablation optimizes the continuous hybrid
  // objective, where operator quality is measurable.  The hybrid session
  // shares the cached dictionary — no second fault-simulation pass.
  Session hybrid = SessionBuilder::from_registry("nf_biquad")
                       .fitness(FitnessKind::kHybrid)
                       .build();
  AsciiTable operators({"selection", "crossover", "mean fitness",
                        "zero-I runs"});
  const std::pair<ga::SelectionKind, const char*> selections[] = {
      {ga::SelectionKind::kRoulette, "roulette (paper)"},
      {ga::SelectionKind::kTournament, "tournament"},
      {ga::SelectionKind::kRank, "rank"}};
  const std::pair<ga::CrossoverKind, const char*> crossovers[] = {
      {ga::CrossoverKind::kArithmetic, "arithmetic (paper)"},
      {ga::CrossoverKind::kUniform, "uniform"},
      {ga::CrossoverKind::kBlend, "blend"}};
  for (const auto& [selection, sel_name] : selections) {
    for (const auto& [crossover, cx_name] : crossovers) {
      ga::GaConfig config = ga::GaConfig::paper();
      config.selection = selection;
      config.crossover = crossover;
      const ga::GeneticAlgorithm variant(config);
      double fitness_sum = 0.0;
      std::size_t zero_runs = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto run = hybrid.run_search(variant, seed);
        fitness_sum += run.best.fitness;
        zero_runs += run.best.intersections == 0 ? 1 : 0;
      }
      operators.add_row({sel_name, cx_name,
                         str::format("%.4f", fitness_sum / 5.0),
                         str::format("%zu/5", zero_runs)});
    }
  }
  operators.print(std::cout, "GA operator ablation (paper budget, 5 seeds)");
  return 0;
}
