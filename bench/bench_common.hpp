/// \file bench_common.hpp
/// \brief Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

namespace ftdiag::bench {

/// Standard header every experiment binary prints first, so the combined
/// bench output maps 1:1 onto DESIGN.md's experiment index.
inline void banner(const std::string& experiment_id,
                   const std::string& paper_artefact,
                   const std::string& workload) {
  std::printf("\n================================================================\n");
  std::printf("experiment : %s\n", experiment_id.c_str());
  std::printf("reproduces : %s\n", paper_artefact.c_str());
  std::printf("workload   : %s\n", workload.c_str());
  std::printf("================================================================\n");
}

}  // namespace ftdiag::bench
