/// Ext-A: the GA against baseline searchers under a matched evaluation
/// budget (the paper motivates the GA but compares against nothing; this
/// table supplies the missing comparison).
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/sensitivity.hpp"
#include "ftdiag.hpp"
#include "ga/baselines.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

int main() {
  bench::banner("Ext-A",
                "GA vs random / grid / hill-climb / simulated annealing",
                "nf_biquad CUT, ~1.1k objective evaluations each, 5 seeds");

  Session session = Session::open("builtin:nf_biquad");
  // Force the lazy dictionary build now so the first timed search below
  // doesn't pay for fault simulation while the others hit the cache.
  std::printf("dictionary: %zu faults\n", session.dictionary()->fault_count());

  // The paper GA costs 128 + 15*64 = 1088 evaluations; budget-match it.
  constexpr std::size_t kBudget = 1088;
  const ga::GeneticAlgorithm ga(ga::GaConfig::paper());
  const ga::RandomSearch random(kBudget);
  const ga::GridSearch grid(33);  // 33^2 = 1089
  const ga::HillClimb hillclimb(kBudget, 8, 0.5);
  const ga::SimulatedAnnealing anneal(kBudget, 0.3, 0.995, 0.3);
  const ga::FrequencyOptimizer* optimizers[] = {&ga, &random, &grid,
                                                &hillclimb, &anneal};

  AsciiTable table({"optimizer", "mean fitness", "best fitness",
                    "zero-I runs", "mean evals", "mean ms"});
  for (const auto* optimizer : optimizers) {
    double fitness_sum = 0.0, best_fitness = 0.0, ms_sum = 0.0;
    std::size_t zero_runs = 0, eval_sum = 0;
    constexpr std::uint64_t kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto run = session.run_search(*optimizer, seed);
      const auto t1 = std::chrono::steady_clock::now();
      ms_sum += std::chrono::duration<double, std::milli>(t1 - t0).count();
      fitness_sum += run.best.fitness;
      best_fitness = std::max(best_fitness, run.best.fitness);
      zero_runs += run.best.intersections == 0 ? 1 : 0;
      eval_sum += run.search.evaluations;
    }
    table.add_row({optimizer->name(),
                   str::format("%.4f", fitness_sum / kSeeds),
                   str::format("%.4f", best_fitness),
                   str::format("%zu/%llu", zero_runs,
                               static_cast<unsigned long long>(kSeeds)),
                   std::to_string(eval_sum / kSeeds),
                   str::format("%.1f", ms_sum / kSeeds)});
  }
  table.print(std::cout, "optimizer comparison (same budget)");

  // Sensitivity-informed screening: a deterministic, nearly-free surrogate
  // (pairwise sensitivity-direction angles on a coarse grid) versus the
  // searchers above.  Costs (testables x 2) AC sweeps + O(grid^2) angle
  // evaluations — no fault simulation at all.
  const auto curves = core::compute_sensitivities(
      session.cut(), mna::FrequencyGrid::log_sweep(10.0, 100e3, 80));
  const auto screened = core::screen_frequency_pairs(curves, 40, 3);
  AsciiTable screen_table(
      {"screened pair", "min sep angle", "fitness", "I", "sep margin"});
  for (const auto& [f1, f2] : screened) {
    const auto score = session.score({{f1, f2}});
    screen_table.add_row(
        {str::format("%.1f Hz / %.1f Hz", f1, f2),
         str::format("%.1f deg", core::min_separation_angle(curves, f1, f2)),
         str::format("%.4f", score.fitness),
         std::to_string(score.intersections),
         str::format("%.5f", score.separation_margin)});
  }
  screen_table.print(std::cout,
                     "sensitivity-screened pairs (no fault simulation)");

  std::printf(
      "\nreading: on this small 2-D search space several searchers reach\n"
      "zero intersections; the GA's value is robustness at fixed budget,\n"
      "which the paper's choice of 128x15 reflects.  Sensitivity screening\n"
      "lands in the same region for a fraction of the cost and makes a\n"
      "strong initial population.\n");
  return 0;
}
