/// Ext-C: does the fault-trajectory method generalize beyond the paper's
/// CUT?  Runs the full flow on every registry circuit and reports fitness,
/// ambiguity groups and diagnosis accuracy.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuits/registry.hpp"
#include "core/ambiguity.hpp"
#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

int main() {
  bench::banner("Ext-C", "the method across the benchmark circuit registry",
                "full flow (dictionary -> GA -> evaluation) per circuit");

  AsciiTable table({"circuit", "sites", "faults", "groups", "fitness", "I",
                    "site acc", "group acc"});
  for (const auto& entry : circuits::registry()) {
    const auto cut = entry.make();
    core::AtpgConfig config;
    config.ga.generations = 15;
    core::AtpgFlow flow(cut, config);
    const auto result = flow.run();
    const auto groups = core::find_ambiguity_groups(flow.dictionary());

    core::EvaluationOptions options;
    options.trials = 250;
    const auto report = core::evaluate_diagnosis(
        flow.cut(), flow.dictionary(), result.best.vector,
        core::SamplingPolicy{}, options);

    table.add_row({entry.name,
                   std::to_string(flow.dictionary().site_labels().size()),
                   std::to_string(flow.dictionary().fault_count()),
                   std::to_string(groups.size()),
                   str::format("%.3f", result.best.fitness),
                   std::to_string(result.best.intersections),
                   str::format("%.1f%%", report.site_accuracy * 100),
                   str::format("%.1f%%", report.group_accuracy * 100)});
  }
  table.print(std::cout, "fault-trajectory flow per registry circuit");

  std::printf(
      "\nreading: circuits whose ambiguity-group count is below the site\n"
      "count (tow_thomas: ratio-degenerate pairs; rc_ladder: interchange-\n"
      "able sections) cap site accuracy, while group accuracy stays high —\n"
      "the trajectory method separates exactly what is separable.\n");
  return 0;
}
