/// Ext-C: does the fault-trajectory method generalize beyond the paper's
/// CUT?  Runs the full flow on every registry circuit and reports fitness,
/// ambiguity groups and diagnosis accuracy.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/ambiguity.hpp"
#include "ftdiag.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

int main() {
  bench::banner("Ext-C", "the method across the benchmark circuit registry",
                "full flow (dictionary -> GA -> evaluation) per circuit");

  AsciiTable table({"circuit", "sites", "faults", "groups", "fitness", "I",
                    "site acc", "group acc"});
  for (const auto& name : circuits::registry_names()) {
    Session session = SessionBuilder::from_registry(name).build();
    const auto result = session.generate_tests();
    const auto dictionary = session.dictionary();
    const auto groups = core::find_ambiguity_groups(*dictionary);

    core::EvaluationOptions options;
    options.trials = 250;
    const auto report = session.evaluate(options);

    table.add_row({name,
                   std::to_string(dictionary->site_labels().size()),
                   std::to_string(dictionary->fault_count()),
                   std::to_string(groups.size()),
                   str::format("%.3f", result.best.fitness),
                   std::to_string(result.best.intersections),
                   str::format("%.1f%%", report.site_accuracy * 100),
                   str::format("%.1f%%", report.group_accuracy * 100)});
  }
  table.print(std::cout, "fault-trajectory flow per registry circuit");

  std::printf(
      "\nreading: circuits whose ambiguity-group count is below the site\n"
      "count (tow_thomas: ratio-degenerate pairs; rc_ladder: interchange-\n"
      "able sections) cap site accuracy, while group accuracy stays high —\n"
      "the trajectory method separates exactly what is separable.\n");
  return 0;
}
