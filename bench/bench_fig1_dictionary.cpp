/// Fig. 1 reproduction: "golden behaviour & fault dictionary items".
///
/// The paper's figure overlays the golden magnitude response of the biquad
/// CUT with the faulty responses of the parametric fault dictionary
/// (60 %..140 % in 10 % steps on each of the seven passives).  This binary
/// prints the same family as a table (abridged to 16 frequency rows) and
/// exports the full data set as CSV for plotting.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "circuits/nf_biquad.hpp"
#include "faults/dictionary.hpp"
#include "io/exporters.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace ftdiag;

int main() {
  bench::banner(
      "Fig. 1", "golden behaviour & fault dictionary items (magnitudes)",
      "nf_biquad CUT, 7 passives x {-40..+40%, 10% step}, AC 10Hz-100kHz");

  const auto cut = circuits::make_paper_cut();
  const auto universe = faults::FaultUniverse::over_testable(cut);
  const auto dict = faults::FaultDictionary::build(cut, universe);

  std::printf("dictionary: %zu faulty circuits, %zu grid frequencies\n\n",
              dict.fault_count(), dict.frequencies().size());

  auto entry_for = [&](const std::string& site, double dev) -> std::size_t {
    for (std::size_t idx : dict.entries_for(site)) {
      if (std::fabs(dict.entries()[idx].fault.deviation - dev) < 1e-9) {
        return idx;
      }
    }
    return static_cast<std::size_t>(-1);
  };

  // Table: golden + the R2 and C1 deviation families (the visually most
  // distinct ones in a Q-controlled biquad), 16 frequency rows.
  AsciiTable table([&] {
    std::vector<std::string> header = {"freq", "golden |H|"};
    for (const char* site : {"R2", "C1"}) {
      for (double dev : {-0.40, -0.20, 0.20, 0.40}) {
        header.push_back(str::format("%s%+.0f%%", site, dev * 100));
      }
    }
    return header;
  }());

  const auto& freqs = dict.frequencies();
  const std::size_t stride = freqs.size() / 16;
  for (std::size_t i = 0; i < freqs.size(); i += stride) {
    std::vector<std::string> row = {
        units::format_hz(freqs[i]),
        str::format("%.4f", dict.golden().magnitude(i))};
    for (const char* site : {"R2", "C1"}) {
      for (double dev : {-0.40, -0.20, 0.20, 0.40}) {
        const std::size_t idx = entry_for(site, dev);
        row.push_back(
            str::format("%.4f", dict.entries()[idx].response.magnitude(i)));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "Fig.1 series (abridged; full set in CSV)");

  // Envelope summary per site: how far the +/-40% extremes move |H|.
  AsciiTable envelope({"site", "max |dH| @ -40%", "max |dH| @ +40%"});
  for (const auto& site : dict.site_labels()) {
    const auto& indices = dict.entries_for(site);
    envelope.add_row(
        {site,
         str::format("%.4f", dict.entries()[indices.front()]
                                 .response.max_deviation(dict.golden())),
         str::format("%.4f", dict.entries()[indices.back()]
                                 .response.max_deviation(dict.golden()))});
  }
  envelope.print(std::cout, "per-site response envelope");

  std::ofstream csv("fig1_dictionary.csv", std::ios::binary);
  io::write_dictionary_csv(csv, dict);
  std::printf("\nfull dictionary written to fig1_dictionary.csv\n");
  return 0;
}
