/// Fig. 3 reproduction: "R3 fault trajectory (left), fault diag. (right)".
///
/// Left: the trajectory traced in the XY plane by R3's deviation sweep
/// (through the origin at 0 %).  Right: an unknown fault (*) assigned to
/// the trajectory at minimum perpendicular distance; the paper's example
/// distinguishes an N-type from an M-type fault by that distance.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "circuits/nf_biquad.hpp"
#include "core/atpg.hpp"
#include "faults/fault_injector.hpp"
#include "io/exporters.hpp"
#include "io/report.hpp"
#include "mna/ac_analysis.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

int main() {
  bench::banner("Fig. 3",
                "component fault trajectories + perpendicular-distance "
                "diagnosis of an unknown fault (*)",
                "nf_biquad CUT, GA-optimized 2-frequency test vector");

  const auto cut = circuits::make_paper_cut();
  core::AtpgFlow flow(cut);
  const auto result = flow.run();
  std::printf("test vector: %s  (fitness %.3f, intersections %zu)\n",
              result.best.vector.label().c_str(), result.best.fitness,
              result.best.intersections);

  const auto trajectories = flow.evaluator().trajectories(result.best.vector);

  // Left panel: the R3 trajectory, point by point.
  AsciiTable left({"deviation", "x (|H(f1)| - golden)", "y (|H(f2)| - golden)"});
  for (const auto& t : trajectories) {
    if (t.site() != "R3") continue;
    for (const auto& p : t.points()) {
      left.add_row({str::format("%+.0f%%", p.deviation * 100),
                    str::format("%+.6f", p.coords[0]),
                    str::format("%+.6f", p.coords[1])});
    }
  }
  left.print(std::cout, "Fig.3 left: R3 fault trajectory");

  // All-trajectory summary (the full left panel).
  AsciiTable summary({"site", "len", "endpoint -40%", "endpoint +40%"});
  for (const auto& t : trajectories) {
    summary.add_row(
        {t.site(), str::format("%.4f", t.length()),
         str::format("(%+.4f, %+.4f)", t.points().front().coords[0],
                     t.points().front().coords[1]),
         str::format("(%+.4f, %+.4f)", t.points().back().coords[0],
                     t.points().back().coords[1])});
  }
  summary.print(std::cout, "all 7 trajectories");

  // Right panel: diagnose an unknown off-grid fault.
  const auto engine = flow.evaluator().make_engine(result.best.vector);
  for (const auto& unknown :
       {faults::ParametricFault{faults::FaultSite::value_of("R3"), 0.23},
        faults::ParametricFault{faults::FaultSite::value_of("C1"), -0.17},
        faults::ParametricFault{faults::FaultSite::value_of("Rb"), 0.35}}) {
    const auto faulty = faults::inject(cut.circuit, unknown);
    mna::AcAnalysis analysis(faulty);
    const auto measured = analysis.sweep(result.best.vector.frequencies_hz,
                                         cut.output_node);
    const auto observed = flow.evaluator().sampler().sample(
        measured, result.best.vector.frequencies_hz);
    std::printf("\nunknown fault (*) injected: %s   observed point (%.5f, %.5f)\n",
                unknown.label().c_str(), observed[0], observed[1]);
    io::print_diagnosis(std::cout, engine.diagnose(observed));
  }

  std::ofstream csv("fig3_trajectories.csv", std::ios::binary);
  io::write_trajectories_csv(csv, trajectories);
  io::write_file("fig3_trajectories.gp",
                 io::trajectory_gnuplot_script(
                     trajectories, "fig3_trajectories.csv",
                     "nf_biquad fault trajectories (" +
                         result.best.vector.label() + ")"));
  std::printf("\ntrajectories written to fig3_trajectories.csv (+ .gp)\n");
  return 0;
}
