/// Fig. 2 reproduction: "the transformation into a coordinate data".
///
/// The paper samples the golden curve H and one faulty curve K at two test
/// frequencies f1, f2, turning each whole curve into one XY point:
/// H -> (A1, A2), K -> (B1, B2), then translates the golden point to the
/// origin.  This binary prints exactly those numbers for a defective
/// component, at both a hand-picked and the GA-optimized frequency pair.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuits/nf_biquad.hpp"
#include "core/atpg.hpp"
#include "faults/fault_simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace ftdiag;

namespace {

void show_transformation(const faults::FaultSimulator& sim,
                         const core::SpectralSampler& sampler,
                         const faults::ParametricFault& fault, double f1,
                         double f2) {
  const std::vector<double> freqs = {f1, f2};
  const auto h = sim.golden(freqs);              // golden curve H
  const auto k = sim.simulate(fault, freqs);     // faulty curve K

  std::printf("\ntest vector: f1=%s f2=%s   fault: %s\n",
              units::format_hz(f1).c_str(), units::format_hz(f2).c_str(),
              fault.label().c_str());

  AsciiTable table({"curve", "|.(f1)|", "|.(f2)|", "XY point (golden-rel.)"});
  const auto p_h = sampler.sample(h, freqs);
  const auto p_k = sampler.sample(k, freqs);
  table.add_row({"H (golden)", str::format("A1=%.5f", h.magnitude(0)),
                 str::format("A2=%.5f", h.magnitude(1)),
                 str::format("(%.5f, %.5f)", p_h[0], p_h[1])});
  table.add_row({"K (faulty)", str::format("B1=%.5f", k.magnitude(0)),
                 str::format("B2=%.5f", k.magnitude(1)),
                 str::format("(%.5f, %.5f)", p_k[0], p_k[1])});
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("Fig. 2",
                "sampling H (golden) and K (faulty) at f1, f2 -> XY points, "
                "golden point translated to the origin",
                "nf_biquad CUT, fault R3+30%");

  const auto cut = circuits::make_paper_cut();
  const faults::FaultSimulator sim(cut);
  const core::SpectralSampler sampler(
      sim.golden(sim.dictionary_frequencies()), core::SamplingPolicy{});

  const faults::ParametricFault fault{faults::FaultSite::value_of("R3"), 0.30};

  // A generic pair inside the passband/transition band...
  show_transformation(sim, sampler, fault, 500.0, 2000.0);

  // ...and the pair the GA would actually pick.
  core::AtpgFlow flow(cut);
  const auto result = flow.run();
  std::printf("\nGA-optimized vector (fitness %.3f, I=%zu):\n",
              result.best.fitness, result.best.intersections);
  show_transformation(sim, sampler, fault,
                      result.best.vector.frequencies_hz[0],
                      result.best.vector.frequencies_hz[1]);

  std::printf(
      "\nreading: the golden curve H maps to the origin; the defective\n"
      "component moves the point away from it, exactly as in the paper.\n");
  return 0;
}
