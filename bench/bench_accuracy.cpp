/// Ext-B: quantitative diagnosis accuracy (the statistics the paper's
/// mechanism implies but does not report): accuracy vs number of test
/// frequencies, vs measurement noise, vs component tolerances, and vs the
/// dictionary's deviation step.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuits/nf_biquad.hpp"
#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

namespace {

core::AccuracyReport run_eval(const core::AtpgFlow& flow,
                              const core::TestVector& tv,
                              const core::EvaluationOptions& options) {
  return core::evaluate_diagnosis(flow.cut(), flow.dictionary(), tv,
                                  core::SamplingPolicy{}, options);
}

std::vector<std::string> report_row(const std::string& label,
                                    const core::AccuracyReport& r) {
  return {label, ftdiag::str::format("%.1f%%", r.site_accuracy * 100),
          ftdiag::str::format("%.1f%%", r.group_accuracy * 100),
          ftdiag::str::format("%.1f%%", r.top2_accuracy * 100),
          ftdiag::str::format("%.2f%%", r.mean_deviation_error * 100),
          ftdiag::str::format("%.2f", r.mean_confidence)};
}

const std::vector<std::string> kHeader = {
    "condition", "site acc", "group acc", "top-2", "|dev err|", "confidence"};

}  // namespace

int main() {
  bench::banner("Ext-B", "diagnosis accuracy under realistic conditions",
                "nf_biquad CUT, 400 random off-grid unknown faults per row");

  core::EvaluationOptions base;
  base.trials = 400;

  // --- accuracy vs number of test frequencies --------------------------
  {
    AsciiTable table(kHeader);
    for (std::size_t n : {1u, 2u, 3u, 4u}) {
      core::AtpgConfig config;
      config.n_frequencies = n;
      core::AtpgFlow flow(circuits::make_paper_cut(), config);
      const auto result = flow.run();
      table.add_row(report_row(
          str::format("%zu frequencies (%s)", n,
                      result.best.vector.label().c_str()),
          run_eval(flow, result.best.vector, base)));
    }
    table.print(std::cout, "accuracy vs test-vector size");
  }

  // Two optimized vectors for the robustness sweeps: the paper fitness
  // (intersections only) and the hybrid (intersections + separation).
  // The paper objective saturates at I = 0 and may pick frequency pairs
  // whose trajectories, while crossing-free, sit microscopically close —
  // noise then collapses them.  The hybrid keeps them apart.
  core::AtpgFlow flow(circuits::make_paper_cut());
  const auto paper_vec = flow.run().best.vector;
  core::AtpgConfig hybrid_config;
  hybrid_config.fitness = core::FitnessKind::kHybrid;
  core::AtpgFlow hybrid_flow(circuits::make_paper_cut(), hybrid_config);
  const auto hybrid_vec = hybrid_flow.run().best.vector;
  const auto best = hybrid_vec;  // used by the later sweeps
  std::printf("\npaper-fitness vector : %s\n", paper_vec.label().c_str());
  std::printf("hybrid-fitness vector: %s\n", hybrid_vec.label().c_str());

  // --- accuracy vs measurement noise ------------------------------------
  {
    AsciiTable table(kHeader);
    for (double sigma : {0.0, 0.002, 0.005, 0.01, 0.02, 0.05}) {
      auto options = base;
      options.noise_sigma = sigma;
      table.add_row(report_row(
          str::format("paper fitness vec, noise = %.1f%%", sigma * 100),
          run_eval(flow, paper_vec, options)));
      table.add_row(report_row(
          str::format("hybrid fitness vec, noise = %.1f%%", sigma * 100),
          run_eval(flow, hybrid_vec, options)));
    }
    table.print(std::cout,
                "accuracy vs measurement noise (paper vs hybrid objective)");
  }

  // --- accuracy vs component tolerances ---------------------------------
  {
    AsciiTable table(kHeader);
    for (double tol : {0.0, 0.005, 0.01, 0.02, 0.05}) {
      auto options = base;
      if (tol > 0.0) {
        faults::ToleranceSpec spec;
        spec.resistor_tolerance = tol;
        spec.capacitor_tolerance = tol;
        options.tolerance = spec;
      }
      table.add_row(report_row(
          str::format("R/C tolerance = %.1f%%", tol * 100),
          run_eval(flow, best, options)));
    }
    table.print(std::cout, "accuracy vs healthy-component tolerance");
  }

  // --- accuracy vs dictionary deviation step ----------------------------
  {
    AsciiTable table(kHeader);
    for (double step : {0.05, 0.10, 0.20, 0.40}) {
      core::AtpgConfig config;
      config.deviations.step_fraction = step;
      core::AtpgFlow stepped(circuits::make_paper_cut(), config);
      const auto result = stepped.run();
      table.add_row(report_row(
          str::format("step = %.0f%% (%zu faults)", step * 100,
                      stepped.dictionary().fault_count()),
          run_eval(stepped, result.best.vector, base)));
    }
    table.print(std::cout, "accuracy vs dictionary deviation step");
  }

  // --- accuracy vs unknown-fault magnitude ------------------------------
  {
    AsciiTable table(kHeader);
    struct Range { double lo, hi; };
    for (const Range r : {Range{0.02, 0.05}, Range{0.05, 0.10},
                          Range{0.10, 0.25}, Range{0.25, 0.40}}) {
      auto options = base;
      options.min_abs_deviation = r.lo;
      options.max_abs_deviation = r.hi;
      options.noise_sigma = 0.005;
      table.add_row(report_row(
          str::format("|deviation| in [%.0f%%, %.0f%%], 0.5%% noise",
                      r.lo * 100, r.hi * 100),
          run_eval(flow, best, options)));
    }
    table.print(std::cout, "accuracy vs unknown-fault magnitude");
  }
  return 0;
}
