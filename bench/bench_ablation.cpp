/// Ext-D: fitness-function ablation.
///
/// The paper's fitness counts only intersections (1/(1+I)); a vector with
/// zero crossings can still place trajectories arbitrarily close together.
/// This bench compares the paper fitness against the separation margin and
/// a hybrid, measured by the diagnosis accuracy each delivers under noise.
/// All three sessions per CUT share one cached fault dictionary.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "ftdiag.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

namespace {

void ablate(const circuits::CircuitUnderTest& cut, const char* title) {
  AsciiTable table({"fitness fn", "best value", "I", "sep margin",
                    "clean acc", "acc @ 1% noise", "acc @ 5% noise"});
  for (const FitnessKind fitness : {FitnessKind::kPaper,
                                    FitnessKind::kSeparation,
                                    FitnessKind::kHybrid}) {
    Session session = SessionBuilder(cut).fitness(fitness).build();
    const auto result = session.generate_tests();

    auto accuracy_at = [&](double sigma) {
      core::EvaluationOptions options;
      options.trials = 300;
      options.noise_sigma = sigma;
      return session.evaluate(options).site_accuracy;
    };

    table.add_row({core::to_string(fitness),
                   str::format("%.4f", result.best.fitness),
                   std::to_string(result.best.intersections),
                   str::format("%.4f", result.best.separation_margin),
                   str::format("%.1f%%", accuracy_at(0.0) * 100),
                   str::format("%.1f%%", accuracy_at(0.01) * 100),
                   str::format("%.1f%%", accuracy_at(0.05) * 100)});
  }
  table.print(std::cout, title);
}

}  // namespace

int main() {
  bench::banner("Ext-D", "fitness-function ablation (paper vs separation vs "
                         "hybrid objective)",
                "GA with paper parameters, accuracy under magnitude noise");

  ablate(circuits::make_by_name("nf_biquad"), "nf_biquad (the paper CUT)");
  ablate(circuits::make_by_name("tow_thomas"), "tow_thomas (ambiguity-group CUT)");

  std::printf(
      "\nreading: intersection count alone saturates at I=0; separation-\n"
      "aware objectives buy additional noise margin at equal budget.\n");
  return 0;
}
