/// Ext-D: fitness-function ablation.
///
/// The paper's fitness counts only intersections (1/(1+I)); a vector with
/// zero crossings can still place trajectories arbitrarily close together.
/// This bench compares the paper fitness against the separation margin and
/// a hybrid, measured by the diagnosis accuracy each delivers under noise.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuits/nf_biquad.hpp"
#include "circuits/tow_thomas.hpp"
#include "core/atpg.hpp"
#include "core/evaluation.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace ftdiag;

namespace {

void ablate(const circuits::CircuitUnderTest& cut, const char* title) {
  AsciiTable table({"fitness fn", "best value", "I", "sep margin",
                    "clean acc", "acc @ 1% noise", "acc @ 5% noise"});
  for (const char* fitness : {"paper", "separation", "hybrid"}) {
    core::AtpgConfig config;
    config.fitness = fitness;
    core::AtpgFlow flow(cut, config);
    const auto result = flow.run();

    auto accuracy_at = [&](double sigma) {
      core::EvaluationOptions options;
      options.trials = 300;
      options.noise_sigma = sigma;
      return core::evaluate_diagnosis(flow.cut(), flow.dictionary(),
                                      result.best.vector,
                                      core::SamplingPolicy{}, options)
          .site_accuracy;
    };

    table.add_row({fitness, str::format("%.4f", result.best.fitness),
                   std::to_string(result.best.intersections),
                   str::format("%.4f", result.best.separation_margin),
                   str::format("%.1f%%", accuracy_at(0.0) * 100),
                   str::format("%.1f%%", accuracy_at(0.01) * 100),
                   str::format("%.1f%%", accuracy_at(0.05) * 100)});
  }
  table.print(std::cout, title);
}

}  // namespace

int main() {
  bench::banner("Ext-D", "fitness-function ablation (paper vs separation vs "
                         "hybrid objective)",
                "GA with paper parameters, accuracy under magnitude noise");

  ablate(circuits::make_paper_cut(), "nf_biquad (the paper CUT)");
  ablate(circuits::make_tow_thomas(), "tow_thomas (ambiguity-group CUT)");

  std::printf(
      "\nreading: intersection count alone saturates at I=0; separation-\n"
      "aware objectives buy additional noise margin at equal budget.\n");
  return 0;
}
